"""Query featurization: queries become collections of feature-vector sets.

Following Sections 3.1 and 3.4 of the paper, a query ``(T_q, J_q, P_q)``
becomes three sets of fixed-width vectors:

* one vector per table — a one-hot table id, optionally followed by the
  normalized number of qualifying materialized samples or the full
  qualifying-sample bitmap,
* one vector per join — a one-hot join id,
* one vector per predicate — one-hot column id, one-hot operator id and the
  literal normalized to [0, 1] with the column's min/max.

Queries without joins or without predicates simply have empty join/predicate
sets; the batching layer pads them and the model's masked average ignores the
padding.

Three featurization paths share one id-gathering pass and produce consistent
tensors:

* the legacy per-query path (:meth:`QueryFeaturizer.featurize` +
  ``batching.collate``), which concatenates one-hot vectors element by
  element,
* the vectorized *padded* path (:meth:`QueryFeaturizer.featurize_batch` /
  :meth:`QueryFeaturizer.featurize_dataset`), which writes the padded
  ``(batch, max set size, width)`` tensors in a handful of fancy-indexed
  assignments against precomputed one-hot lookup tables, and
* the vectorized *ragged* path (:meth:`QueryFeaturizer.featurize_ragged`),
  which skips padding entirely and emits flattened ``(total_elements, width)``
  arrays plus CSR offsets — the layout of the fused inference engine, and
* the zero-copy serving path (:meth:`QueryFeaturizer.featurize_into`), which
  writes the same ragged arrays directly into caller-owned reusable
  :class:`FeatureBuffers` instead of allocating fresh ones per call — the
  estimation service's batcher reuses one buffer set across micro-batches,
  and the engine consumes the views without copying (they are contiguous and
  already in the engine dtype).

All paths compute in the featurizer's configurable ``dtype`` (float32 by
default in serving configurations; see ``MSCNConfig.dtype``).  Literal
normalization is always performed in float64 and rounded once on store, so
the float32 and float64 paths agree to the last representable bit.

Two acceleration tiers sit underneath all of the vectorized paths, both
bit-identical to the uncompiled gather:

* the **compiled plan** (:class:`CompiledFeaturizerPlan`, on by default) —
  per-query vocabulary lookups are resolved once, memoized by the query's
  order-independent signature, and sample probes are registered once in a
  dense bitmap matrix, so featurizing repeated serving traffic is pure
  array assembly with no per-element Python dict lookups, and
* the **process tier** (``featurize_workers=``) — spans of a large workload
  are gathered in spawned worker processes (each initialized once with the
  pickled encoding and a reduced sampled-rows database, BLAS pinned to one
  thread before numpy loads), shipped back as compact id arrays and merged
  in span order.  The GIL bounds the gather loop, so this is the only tier
  that scales featurization across cores.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.arena import ScratchArena
from repro.core.config import FeaturizationVariant
from repro.core.encoding import SchemaEncoding
from repro.core.normalization import ValueNormalizer
from repro.db.query import Predicate, Query
from repro.db.sampling import MaterializedSamples
from repro.db.table import Database, Table
from repro.utils.parallel import ProcessPool, chunk_spans, resolve_worker_count

if TYPE_CHECKING:  # pragma: no cover - import cycle, type hints only
    from repro.core.batching import Batch, FeaturizedDataset, RaggedDataset

__all__ = [
    "CompiledFeaturizerPlan",
    "FeatureBuffers",
    "FeaturizedQuery",
    "QueryFeaturizer",
]


class FeatureBuffers(ScratchArena):
    """Reusable backing storage for :meth:`QueryFeaturizer.featurize_into`.

    A :class:`~repro.core.arena.ScratchArena` holding one grow-only array
    per feature set, sized to the largest batch seen so far.  Requesting a
    view re-zeroes exactly the rows handed out (a memset, far cheaper than
    allocator churn plus zeroing), and a request whose width or dtype no
    longer matches — e.g. after a model hot-swap to a different schema —
    transparently reallocates.  The arena base adds generation tags (the
    service advances the generation on model swap), a high-water mark and
    per-micro-batch lease/reuse accounting.

    The views handed out alias this storage: a dataset featurized into a
    buffer set is only valid until the next ``featurize_into`` call against
    the same buffers.  That is exactly the serving batcher's lifecycle (one
    micro-batch is fully answered before the next is featurized); do not
    share one ``FeatureBuffers`` across concurrent featurizing threads.
    """

    def __init__(self) -> None:
        super().__init__(name="feature-buffers")


class _FeatureLookups:
    """Precomputed lookup tables for the vectorized featurization paths.

    One row per vocabulary entry, stored in the featurizer's compute dtype;
    featurizing a workload then reduces to gathering integer ids and
    fancy-indexing into these tables.
    """

    def __init__(self, featurizer: "QueryFeaturizer"):
        encoding = featurizer.encoding
        dtype = featurizer.dtype
        self.table_eye = np.eye(encoding.num_tables, dtype=dtype)
        # Join rows carry the zero-padding up to the (possibly widened)
        # join feature width, so one gather produces finished vectors.
        self.join_rows = np.zeros(
            (encoding.num_joins, featurizer.join_feature_width), dtype=dtype
        )
        self.join_rows[:, : encoding.num_joins] = np.eye(encoding.num_joins)
        self.column_eye = np.eye(encoding.num_columns, dtype=dtype)
        self.operator_eye = np.eye(encoding.num_operators, dtype=dtype)
        # Per-column bounds, indexed by column id, for vectorized literal
        # normalization; kept in float64 so normalization math is identical
        # across compute dtypes.  Degenerate columns (max <= min) normalize
        # to 0.0; their span is set to 1.0 only to keep the division
        # well-defined.
        num_columns = encoding.num_columns
        self.column_min = np.zeros(num_columns, dtype=np.float64)
        self.column_span = np.ones(num_columns, dtype=np.float64)
        self.column_degenerate = np.zeros(num_columns, dtype=bool)
        for key, column_id in encoding.column_index.items():
            table, column = key.split(".", 1)
            minimum, maximum = featurizer.value_normalizer.bounds(table, column)
            self.column_min[column_id] = minimum
            if maximum <= minimum:
                self.column_degenerate[column_id] = True
            else:
                self.column_span[column_id] = maximum - minimum


@dataclass(frozen=True)
class FeaturizedQuery:
    """Feature sets of a single query.

    Each attribute is a 2-D array of shape ``(set size, feature width)``; the
    join and predicate arrays may have zero rows.
    """

    table_features: np.ndarray
    join_features: np.ndarray
    predicate_features: np.ndarray

    @property
    def num_tables(self) -> int:
        return self.table_features.shape[0]

    @property
    def num_joins(self) -> int:
        return self.join_features.shape[0]

    @property
    def num_predicates(self) -> int:
        return self.predicate_features.shape[0]


@dataclass
class _GatheredWorkload:
    """Flat integer ids of a workload, collected in one pass over the queries.

    Everything downstream — padded or ragged — is dense array work against
    these ids.  ``*_query_ids`` and ``*_slots`` give each element's owning
    query and its position within that query's set.

    ``probe_bitmaps`` is the accelerated tiers' alternative to
    ``sample_probes``: the already-gathered qualifying-sample bitmap rows,
    one per table element.  When present, the downstream writers consume it
    directly instead of probing :class:`~repro.db.sampling.MaterializedSamples`
    per element (the compiled plan gathers rows from its probe matrix; the
    process tier ships rows back from the workers).
    """

    num_queries: int
    table_query_ids: np.ndarray
    table_slots: np.ndarray
    table_ids: np.ndarray
    sample_probes: list
    join_query_ids: np.ndarray
    join_slots: np.ndarray
    join_ids: np.ndarray
    predicate_query_ids: np.ndarray
    predicate_slots: np.ndarray
    column_ids: np.ndarray
    operator_ids: np.ndarray
    literal_values: np.ndarray
    max_tables: int
    max_joins: int
    max_predicates: int
    probe_bitmaps: "np.ndarray | None" = None

    def lengths(self, query_ids: np.ndarray) -> np.ndarray:
        """Per-query element counts of one set."""
        return np.bincount(query_ids, minlength=self.num_queries).astype(np.int64)


class _CompiledQuery:
    """Pre-resolved flat ids of one query, cached by its signature.

    Everything the gather pass would look up per element — table / join /
    column / operator vocabulary ids, float64 literal values and the probe
    ids into the plan's bitmap matrix — resolved once and replayed as numpy
    concatenation on every later appearance of the same query shape.
    """

    __slots__ = (
        "table_ids",
        "probe_ids",
        "join_ids",
        "column_ids",
        "operator_ids",
        "literal_values",
        "num_tables",
        "num_joins",
        "num_predicates",
    )

    def __init__(
        self,
        table_ids: np.ndarray,
        probe_ids: np.ndarray,
        join_ids: np.ndarray,
        column_ids: np.ndarray,
        operator_ids: np.ndarray,
        literal_values: np.ndarray,
    ):
        self.table_ids = table_ids
        self.probe_ids = probe_ids
        self.join_ids = join_ids
        self.column_ids = column_ids
        self.operator_ids = operator_ids
        self.literal_values = literal_values
        self.num_tables = table_ids.shape[0]
        self.num_joins = join_ids.shape[0]
        self.num_predicates = column_ids.shape[0]


class CompiledFeaturizerPlan:
    """Precompiled featurization against one (schema, encoding) pair.

    The uncompiled gather (:meth:`QueryFeaturizer._gather`) pays per-element
    Python dict lookups on every call — ``table_index[table]``,
    ``join_index[join.canonical]``, ``column_index[f"{t}.{c}"]`` plus a
    sample-probe key per table — which dominates serving-path featurization
    once inference itself is fused.  The plan compiles each *distinct* query
    once, memoized by :meth:`~repro.db.query.Query.signature` (order
    independent, so re-built query objects with the same content hit), into
    flat int64 id arrays, and registers each distinct sample probe once in a
    dense row of its bitmap matrix.  Gathering a batch of previously seen
    queries is then pure array assembly: ``np.repeat`` for query-id / slot
    layout, concatenation of the per-query id arrays, and one fancy-indexed
    gather of bitmap rows.  The output is bit-identical to the uncompiled
    gather (same ids, same float64 literals, same bitmap rows — the probe
    rows come from the very same :class:`~repro.db.sampling.MaterializedSamples`
    cache), including the error messages for unknown tables/joins/columns.

    The query cache is LRU-bounded (dict-reinsertion order, like the bitmap
    cache) by ``max_cached_queries``; the probe matrix is flushed wholesale
    — together with the compiled queries that index into it — if a
    long-tailed workload ever accumulates ``4 * max_cached_queries``
    distinct probes.
    """

    DEFAULT_MAX_CACHED_QUERIES = 65536

    def __init__(
        self,
        featurizer: "QueryFeaturizer",
        max_cached_queries: "int | None" = DEFAULT_MAX_CACHED_QUERIES,
    ):
        if max_cached_queries is not None and max_cached_queries <= 0:
            raise ValueError("max_cached_queries must be positive or None")
        encoding = featurizer.encoding
        self._table_index = encoding.table_index
        self._join_index = encoding.join_index
        self._column_index = encoding.column_index
        self._operator_index = encoding.operator_index
        self._samples = featurizer.samples
        self._needs_samples = featurizer.variant is not FeaturizationVariant.NO_SAMPLES
        self.max_cached_queries = max_cached_queries
        self._compiled: dict[tuple, _CompiledQuery] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._flushes = 0
        self._probe_ids: dict[tuple, int] = {}
        self._num_probes = 0
        sample_width = self._samples.sample_size if self._needs_samples else 0
        self._probe_matrix = np.zeros((64 if self._needs_samples else 0, sample_width), dtype=bool)

    # -- per-query compilation --------------------------------------------
    def compile_query(self, query: Query) -> _CompiledQuery:
        """The cached compiled form of ``query`` (compiling on first sight)."""
        signature = query.signature()
        compiled = self._compiled.get(signature)
        if compiled is not None:
            self._hits += 1
            # Re-insert to mark most-recently used (dicts preserve insertion
            # order; the first key is always the eviction victim).
            del self._compiled[signature]
            self._compiled[signature] = compiled
            # The compiled entry's probe bitmaps are served from the probe
            # matrix without touching the samples' bitmap cache; credit the
            # reuse so cache observability matches the legacy path.
            if self._needs_samples:
                self._samples.record_bitmap_reuse(len(compiled.probe_ids))
            return compiled
        self._misses += 1
        compiled = self._compile(query)
        if (
            self.max_cached_queries is not None
            and len(self._compiled) >= self.max_cached_queries
        ):
            self._compiled.pop(next(iter(self._compiled)))
            self._evictions += 1
        self._compiled[signature] = compiled
        return compiled

    def _compile(self, query: Query) -> _CompiledQuery:
        num_tables = len(query.tables)
        table_ids = np.empty(num_tables, dtype=np.int64)
        probe_ids = np.empty(num_tables if self._needs_samples else 0, dtype=np.int64)
        for slot, table in enumerate(query.tables):
            try:
                table_ids[slot] = self._table_index[table]
            except KeyError:
                raise KeyError(
                    f"table {table!r} is not part of the encoded schema"
                ) from None
            if self._needs_samples:
                probe_ids[slot] = self._probe_id(table, query.predicates_on(table))
        join_ids = np.empty(len(query.joins), dtype=np.int64)
        for slot, join in enumerate(query.joins):
            try:
                join_ids[slot] = self._join_index[join.canonical]
            except KeyError:
                raise KeyError(
                    f"join {join.canonical!r} is not part of the encoded schema"
                ) from None
        num_predicates = len(query.predicates)
        column_ids = np.empty(num_predicates, dtype=np.int64)
        operator_ids = np.empty(num_predicates, dtype=np.int64)
        literal_values = np.empty(num_predicates, dtype=np.float64)
        for slot, predicate in enumerate(query.predicates):
            key = f"{predicate.table}.{predicate.column}"
            try:
                column_ids[slot] = self._column_index[key]
            except KeyError:
                raise KeyError(
                    f"column {key!r} is not a predicable (non-key) column"
                ) from None
            operator_ids[slot] = self._operator_index[predicate.operator.value]
            literal_values[slot] = float(predicate.value)
        return _CompiledQuery(
            table_ids, probe_ids, join_ids, column_ids, operator_ids, literal_values
        )

    def _probe_id(self, table: str, predicates: tuple) -> int:
        key = MaterializedSamples.probe_signature(table, predicates)
        probe_id = self._probe_ids.get(key)
        if probe_id is not None:
            # A new query reusing an already-resolved probe: served from the
            # probe matrix, credited as a bitmap-cache hit (see above).
            self._samples.record_bitmap_reuse(1)
            return probe_id
        if (
            self.max_cached_queries is not None
            and self._num_probes >= 4 * self.max_cached_queries
        ):
            # Compiled queries hold indexes into the probe matrix, so probes
            # cannot be evicted one by one; a wholesale flush (rare: it takes
            # a quarter-million distinct predicate sets at the default cap)
            # keeps every reference consistent.
            self._compiled.clear()
            self._probe_ids.clear()
            self._num_probes = 0
            self._flushes += 1
        bitmap = self._samples.bitmap(table, predicates)
        probe_id = self._num_probes
        if probe_id >= self._probe_matrix.shape[0]:
            capacity = max(64, 2 * self._probe_matrix.shape[0], probe_id + 1)
            grown = np.zeros((capacity, self._probe_matrix.shape[1]), dtype=bool)
            grown[: self._probe_matrix.shape[0]] = self._probe_matrix
            self._probe_matrix = grown
        self._probe_matrix[probe_id] = bitmap
        self._probe_ids[key] = probe_id
        self._num_probes += 1
        return probe_id

    # -- batch assembly -----------------------------------------------------
    def gather(self, queries: Sequence[Query]) -> _GatheredWorkload:
        """A :class:`_GatheredWorkload` assembled from compiled queries.

        Bit-identical to :meth:`QueryFeaturizer._gather` on the same queries;
        ``probe_bitmaps`` is pre-gathered so downstream writers skip the
        per-element sample probing entirely.
        """
        compiled = [self.compile_query(query) for query in queries]
        num_queries = len(queries)
        query_indexes = np.arange(num_queries, dtype=np.int64)

        def counts_of(attribute: str) -> np.ndarray:
            return np.fromiter(
                (getattr(entry, attribute) for entry in compiled),
                dtype=np.int64,
                count=num_queries,
            )

        def layout(counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            query_ids = np.repeat(query_indexes, counts)
            total = int(counts.sum())
            starts = np.zeros(num_queries, dtype=np.int64)
            np.cumsum(counts[:-1], out=starts[1:])
            slots = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
            return query_ids, slots

        def concatenated(attribute: str, dtype) -> np.ndarray:
            if not compiled:
                return np.empty(0, dtype=dtype)
            return np.concatenate([getattr(entry, attribute) for entry in compiled])

        table_counts = counts_of("num_tables")
        join_counts = counts_of("num_joins")
        predicate_counts = counts_of("num_predicates")
        table_query_ids, table_slots = layout(table_counts)
        join_query_ids, join_slots = layout(join_counts)
        predicate_query_ids, predicate_slots = layout(predicate_counts)

        probe_bitmaps = None
        if self._needs_samples:
            probe_bitmaps = self._probe_matrix[concatenated("probe_ids", np.int64)]

        return _GatheredWorkload(
            num_queries=num_queries,
            table_query_ids=table_query_ids,
            table_slots=table_slots,
            table_ids=concatenated("table_ids", np.int64),
            sample_probes=[],
            join_query_ids=join_query_ids,
            join_slots=join_slots,
            join_ids=concatenated("join_ids", np.int64),
            predicate_query_ids=predicate_query_ids,
            predicate_slots=predicate_slots,
            column_ids=concatenated("column_ids", np.int64),
            operator_ids=concatenated("operator_ids", np.int64),
            literal_values=concatenated("literal_values", np.float64),
            max_tables=int(table_counts.max(initial=1)),
            max_joins=int(join_counts.max(initial=1)),
            max_predicates=int(predicate_counts.max(initial=1)),
            probe_bitmaps=probe_bitmaps,
        )

    # -- introspection -------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        return self._hits

    @property
    def cache_misses(self) -> int:
        return self._misses

    @property
    def cache_evictions(self) -> int:
        return self._evictions

    @property
    def num_cached_queries(self) -> int:
        return len(self._compiled)

    @property
    def num_probes(self) -> int:
        """Distinct sample probes registered in the bitmap matrix."""
        return self._num_probes


class QueryFeaturizer:
    """Turns queries into :class:`FeaturizedQuery` instances.

    Parameters
    ----------
    encoding:
        One-hot vocabularies derived from the schema.
    value_normalizer:
        Per-column min/max bounds for literal normalization.
    samples:
        Materialized base-table samples; required for the ``NUM_SAMPLES`` and
        ``BITMAPS`` variants, ignored by ``NO_SAMPLES``.
    variant:
        Which sampling enrichment to attach to table vectors (Figure 4).
    dtype:
        Compute dtype of all produced feature arrays (float64 by default for
        standalone use; estimators pass their configured serving dtype).
    compiled:
        Route the vectorized paths through the (lazily built)
        :class:`CompiledFeaturizerPlan` — bit-identical output, no
        per-element dict lookups for repeated queries.  On by default;
        ``False`` keeps the uncompiled gather (the reference path).
    featurize_workers:
        Default process-level featurization budget: ``None`` or ``0`` — all
        in-process (the default), ``"auto"`` — CPU count, a positive integer
        — that many worker processes.  A budget of ``1`` is also in-process
        (one worker process would add IPC for no parallelism).  Every
        ``featurize_*`` method accepts a per-call override.
    min_parallel_queries:
        Workload size below which the process tier is skipped even when
        workers are configured (process dispatch costs milliseconds; small
        batches are cheaper gathered in place).
    """

    def __init__(
        self,
        encoding: SchemaEncoding,
        value_normalizer: ValueNormalizer,
        samples: MaterializedSamples | None = None,
        variant: FeaturizationVariant = FeaturizationVariant.BITMAPS,
        dtype: np.dtype | str = np.float64,
        compiled: bool = True,
        featurize_workers: "int | str | None" = None,
        min_parallel_queries: int = 256,
    ):
        variant = FeaturizationVariant(variant)
        if variant is not FeaturizationVariant.NO_SAMPLES and samples is None:
            raise ValueError(f"variant {variant.value!r} requires materialized samples")
        if min_parallel_queries < 1:
            raise ValueError("min_parallel_queries must be >= 1")
        self.encoding = encoding
        self.value_normalizer = value_normalizer
        self.samples = samples
        self.variant = variant
        self.dtype = np.dtype(dtype)
        self.compiled = bool(compiled)
        _resolve_featurize_workers(featurize_workers)  # fail fast on junk budgets
        self.featurize_workers = featurize_workers
        self.min_parallel_queries = int(min_parallel_queries)
        self._lookups: _FeatureLookups | None = None
        self._plan: CompiledFeaturizerPlan | None = None
        self._featurize_pool: ProcessPool | None = None
        self._worker_payload_bytes: "bytes | None" = None

    # -- feature widths --------------------------------------------------
    @property
    def sample_feature_width(self) -> int:
        if self.variant is FeaturizationVariant.NO_SAMPLES:
            return 0
        if self.variant is FeaturizationVariant.NUM_SAMPLES:
            return 1
        return self.samples.sample_size  # BITMAPS

    @property
    def table_feature_width(self) -> int:
        return self.encoding.num_tables + self.sample_feature_width

    @property
    def join_feature_width(self) -> int:
        # A query without joins still needs a non-degenerate feature width so
        # the join module has well-defined parameters.
        return max(self.encoding.num_joins, 1)

    @property
    def predicate_feature_width(self) -> int:
        return self.encoding.num_columns + self.encoding.num_operators + 1

    # -- featurization ---------------------------------------------------
    def featurize(self, query: Query) -> FeaturizedQuery:
        """Featurize one query (tables, joins, predicates)."""
        dtype = self.dtype
        table_rows = [self._table_vector(query, table) for table in query.tables]
        join_rows = [self._join_vector(join) for join in query.joins]
        predicate_rows = [self._predicate_vector(predicate) for predicate in query.predicates]
        return FeaturizedQuery(
            table_features=np.vstack(table_rows).astype(dtype, copy=False)
            if table_rows
            else np.zeros((0, self.table_feature_width), dtype=dtype),
            join_features=np.vstack(join_rows).astype(dtype, copy=False)
            if join_rows
            else np.zeros((0, self.join_feature_width), dtype=dtype),
            predicate_features=np.vstack(predicate_rows).astype(dtype, copy=False)
            if predicate_rows
            else np.zeros((0, self.predicate_feature_width), dtype=dtype),
        )

    def featurize_many(self, queries: Sequence[Query]) -> list[FeaturizedQuery]:
        return [self.featurize(query) for query in queries]

    # -- per-element vectors ---------------------------------------------
    def _table_vector(self, query: Query, table: str) -> np.ndarray:
        one_hot = self.encoding.table_one_hot(table)
        if self.variant is FeaturizationVariant.NO_SAMPLES:
            return one_hot
        predicates = query.predicates_on(table)
        if self.variant is FeaturizationVariant.NUM_SAMPLES:
            count = self.samples.qualifying_count(table, predicates)
            fraction = count / self.samples.sample_size
            return np.concatenate((one_hot, [fraction]))
        bitmap = self.samples.bitmap(table, predicates).astype(np.float64)
        return np.concatenate((one_hot, bitmap))

    def _join_vector(self, join) -> np.ndarray:
        vector = np.zeros(self.join_feature_width, dtype=np.float64)
        vector[: self.encoding.num_joins] = self.encoding.join_one_hot(join)
        return vector

    def _predicate_vector(self, predicate) -> np.ndarray:
        column_one_hot = self.encoding.column_one_hot(predicate.table, predicate.column)
        operator_one_hot = self.encoding.operator_one_hot(predicate.operator)
        normalized_value = self.value_normalizer.normalize(
            predicate.table, predicate.column, predicate.value
        )
        return np.concatenate((column_one_hot, operator_one_hot, [normalized_value]))

    # -- vectorized workload featurization -------------------------------
    def lookups(self) -> _FeatureLookups:
        """The (lazily built) one-hot lookup tables of the vectorized path."""
        if self._lookups is None:
            self._lookups = _FeatureLookups(self)
        return self._lookups

    def plan(self) -> CompiledFeaturizerPlan:
        """The (lazily built) compiled featurizer plan of this encoding."""
        if self._plan is None:
            self._plan = CompiledFeaturizerPlan(self)
        return self._plan

    def featurize_batch(
        self,
        queries: Sequence[Query],
        labels: np.ndarray | None = None,
        cardinalities: np.ndarray | None = None,
        featurize_workers: "int | str | None" = None,
    ) -> "Batch":
        """Featurize and pad a list of queries into one :class:`Batch`.

        Bit-identical to ``collate(self.featurize_many(queries))`` but built
        directly as dense tensors: one pass over the queries gathers integer
        vocabulary ids, the one-hot blocks are written by fancy indexing into
        the precomputed lookup tables, and sample bitmaps are probed through
        the deduplicating cache in :class:`~repro.db.sampling.MaterializedSamples`.
        """
        from repro.core.batching import Batch, _column_vector

        if not queries:
            raise ValueError("cannot featurize an empty batch")
        arrays = self._vectorized_arrays(queries, featurize_workers)
        if labels is not None:
            labels = _column_vector(labels, len(queries), "labels")
        if cardinalities is not None:
            cardinalities = _column_vector(cardinalities, len(queries), "cardinalities")
        return Batch(*arrays, labels=labels, cardinalities=cardinalities)

    def featurize_dataset(
        self,
        queries: Sequence[Query],
        cardinalities: np.ndarray | None = None,
        labels: np.ndarray | None = None,
        featurize_workers: "int | str | None" = None,
    ) -> "FeaturizedDataset":
        """Featurize a whole workload into a pre-collated :class:`FeaturizedDataset`.

        ``featurize_workers`` overrides the featurizer's configured process
        budget for this call (see the constructor).
        """
        from repro.core.batching import FeaturizedDataset, _column_vector

        if not queries:
            raise ValueError("cannot featurize an empty workload")
        arrays = self._vectorized_arrays(queries, featurize_workers)
        if labels is not None:
            labels = _column_vector(labels, len(queries), "labels")
        if cardinalities is not None:
            cardinalities = _column_vector(cardinalities, len(queries), "cardinalities")
        return FeaturizedDataset(*arrays, labels=labels, cardinalities=cardinalities)

    def featurize_ragged(
        self,
        queries: Sequence[Query],
        cardinalities: np.ndarray | None = None,
        labels: np.ndarray | None = None,
        featurize_workers: "int | str | None" = None,
    ) -> "RaggedDataset":
        """Featurize a workload directly into the ragged (CSR) layout.

        No padded tensors are materialized at all: per set, only the real
        elements are written, flattened in query order, alongside per-query
        offsets.  This is the serving path's featurization — the arrays feed
        the fused inference engine without any intermediate reshaping.

        ``featurize_workers`` overrides the featurizer's configured process
        budget for this call (see the constructor).
        """
        from repro.core.batching import RaggedDataset, _column_vector

        if not queries:
            raise ValueError("cannot featurize an empty workload")

        def allocate(name: str, rows: int, width: int) -> np.ndarray:
            return np.zeros((rows, width), dtype=self.dtype)

        tables, joins, predicates = self._ragged_sets(
            self._gathered(queries, featurize_workers), allocate
        )

        if labels is not None:
            labels = _column_vector(labels, len(queries), "labels")
        if cardinalities is not None:
            cardinalities = _column_vector(cardinalities, len(queries), "cardinalities")
        return RaggedDataset(
            tables=tables,
            joins=joins,
            predicates=predicates,
            labels=labels,
            cardinalities=cardinalities,
        )

    def featurize_into(
        self,
        queries: Sequence[Query],
        buffers: FeatureBuffers,
        cardinalities: np.ndarray | None = None,
        labels: np.ndarray | None = None,
        featurize_workers: "int | str | None" = None,
    ) -> "RaggedDataset":
        """Featurize a workload into caller-owned reusable buffers (zero-copy).

        Bit-identical to :meth:`featurize_ragged`, but the three flat feature
        arrays are views into ``buffers`` instead of fresh allocations — in
        steady state a serving micro-batch performs no large feature
        allocations at all, and because the views are contiguous and already
        in the engine dtype, the fused engine consumes them without copying.

        The returned dataset aliases ``buffers`` and is invalidated by the
        next ``featurize_into`` call against the same buffer set (see
        :class:`FeatureBuffers`); callers that need the features to outlive
        the call must copy them or use :meth:`featurize_ragged`.
        """
        from repro.core.batching import RaggedDataset, _column_vector

        if not queries:
            raise ValueError("cannot featurize an empty workload")

        def allocate(name: str, rows: int, width: int) -> np.ndarray:
            return buffers.zeroed(name, rows, width, self.dtype)

        tables, joins, predicates = self._ragged_sets(
            self._gathered(queries, featurize_workers), allocate
        )
        if labels is not None:
            labels = _column_vector(labels, len(queries), "labels")
        if cardinalities is not None:
            cardinalities = _column_vector(cardinalities, len(queries), "cardinalities")
        return RaggedDataset(
            tables=tables,
            joins=joins,
            predicates=predicates,
            labels=labels,
            cardinalities=cardinalities,
        )

    def _ragged_sets(self, gathered: _GatheredWorkload, allocate):
        """Build the three ragged feature sets against an array provider.

        ``allocate(name, rows, width)`` must return a zero-filled
        ``(rows, width)`` array in the featurizer dtype — a fresh allocation
        for :meth:`featurize_ragged`, a recycled buffer view for
        :meth:`featurize_into`.  Everything written into the arrays is
        identical between the two paths.
        """
        from repro.core.batching import RaggedSet, offsets_from_lengths

        lookups = self.lookups()
        encoding = self.encoding

        def offsets_of(query_ids: np.ndarray) -> np.ndarray:
            return offsets_from_lengths(gathered.lengths(query_ids))

        # Tables.
        total_tables = gathered.table_ids.shape[0]
        table_features = allocate("tables", total_tables, self.table_feature_width)
        table_features[:, : encoding.num_tables] = lookups.table_eye[gathered.table_ids]
        if self.variant is not FeaturizationVariant.NO_SAMPLES:
            bitmaps = gathered.probe_bitmaps
            if bitmaps is None:
                bitmaps = self.samples.bitmaps_many(gathered.sample_probes)
            if self.variant is FeaturizationVariant.NUM_SAMPLES:
                table_features[:, encoding.num_tables] = (
                    bitmaps.sum(axis=1) / self.samples.sample_size
                )
            else:  # BITMAPS
                table_features[:, encoding.num_tables :] = bitmaps
        tables = RaggedSet(
            features=table_features, offsets=offsets_of(gathered.table_query_ids)
        )

        # Joins (a plain gather: join rows are complete lookup-table rows).
        join_features = allocate("joins", gathered.join_ids.shape[0], self.join_feature_width)
        if gathered.join_ids.size:
            np.take(lookups.join_rows, gathered.join_ids, axis=0, out=join_features)
        joins = RaggedSet(
            features=join_features, offsets=offsets_of(gathered.join_query_ids)
        )

        # Predicates.
        total_predicates = gathered.column_ids.shape[0]
        predicate_features = allocate(
            "predicates", total_predicates, self.predicate_feature_width
        )
        if total_predicates:
            rows = np.arange(total_predicates)
            predicate_features[rows, gathered.column_ids] = 1.0
            predicate_features[rows, encoding.num_columns + gathered.operator_ids] = 1.0
            predicate_features[:, -1] = self._normalized_literals(
                gathered.column_ids, gathered.literal_values
            )
        predicates = RaggedSet(
            features=predicate_features, offsets=offsets_of(gathered.predicate_query_ids)
        )
        return tables, joins, predicates

    def _gathered(
        self, queries: Sequence[Query], featurize_workers: "int | str | None" = None
    ) -> _GatheredWorkload:
        """Route one workload gather through the fastest applicable tier.

        Large workloads with a multi-process budget go to the process tier;
        everything else uses the compiled plan (default) or the reference
        uncompiled gather (``compiled=False``).  All three produce
        bit-identical downstream features.
        """
        budget = self.featurize_workers if featurize_workers is None else featurize_workers
        workers = _resolve_featurize_workers(budget)
        if workers > 1 and len(queries) >= max(self.min_parallel_queries, 2):
            return self._gather_parallel(queries, workers)
        if self.compiled:
            return self.plan().gather(queries)
        return self._gather(queries)

    def _gather_parallel(self, queries: Sequence[Query], workers: int) -> _GatheredWorkload:
        """Gather contiguous spans of the workload in worker processes."""
        spans = chunk_spans(len(queries), min(workers, len(queries)))
        if len(spans) <= 1:
            return self.plan().gather(queries) if self.compiled else self._gather(queries)
        pool = self._ensure_featurize_pool(workers)
        payloads = [_encode_wire_queries(queries[start:stop]) for start, stop in spans]
        parts = pool.map(_featurize_worker_gather, payloads)
        return _merge_gathered_parts(parts, spans, len(queries))

    def _ensure_featurize_pool(self, workers: int) -> ProcessPool:
        if self._featurize_pool is not None and self._featurize_pool.max_workers != workers:
            self._featurize_pool.close()
            self._featurize_pool = None
        if self._featurize_pool is None:
            self._featurize_pool = ProcessPool(
                workers,
                min_parallel_items=2,
                name="featurize",
                initializer=_featurize_worker_configure,
                initargs=(self._worker_payload(),),
            )
        return self._featurize_pool

    def _worker_payload(self) -> bytes:
        """One pickled blob of worker state: encoding + reduced sample database.

        Workers never see the full database: per table, only the sampled
        rows' column values cross the process boundary, rebuilt worker-side
        into a reduced database whose row ``i`` is the parent's ``i``-th
        sampled row — bitmap probes there evaluate exactly the column values
        the parent's samples would touch, so worker bitmaps are bit-identical.
        """
        if self._worker_payload_bytes is None:
            sample_state = None
            if self.variant is not FeaturizationVariant.NO_SAMPLES:
                samples = self.samples
                database = samples.database
                columns: dict[str, dict[str, np.ndarray]] = {}
                for name in database.table_names:
                    rows = samples.sample(name).row_indices
                    table = database.table(name)
                    columns[name] = {
                        column: table.column_values(column, rows)
                        for column in table.schema.column_names
                    }
                sample_state = {
                    "schema": database.schema,
                    "sample_size": samples.sample_size,
                    "columns": columns,
                }
            state = {
                "encoding": self.encoding,
                "variant": self.variant.value,
                "samples": sample_state,
            }
            self._worker_payload_bytes = pickle.dumps(
                state, protocol=pickle.HIGHEST_PROTOCOL
            )
        return self._worker_payload_bytes

    def close(self) -> None:
        """Shut down the featurization worker processes (idempotent).

        The featurizer stays fully usable; the pool respawns on the next
        parallel gather.
        """
        if self._featurize_pool is not None:
            self._featurize_pool.close()
            self._featurize_pool = None

    def _gather(self, queries: Sequence[Query]) -> _GatheredWorkload:
        """One pass over the Python query objects, gathering flat integer ids."""
        encoding = self.encoding
        table_query_ids: list[int] = []
        table_slots: list[int] = []
        table_ids: list[int] = []
        sample_probes: list[tuple[str, tuple]] = []
        join_query_ids: list[int] = []
        join_slots: list[int] = []
        join_ids: list[int] = []
        predicate_query_ids: list[int] = []
        predicate_slots: list[int] = []
        column_ids: list[int] = []
        operator_ids: list[int] = []
        literal_values: list[float] = []

        needs_samples = self.variant is not FeaturizationVariant.NO_SAMPLES
        max_tables = max_joins = max_predicates = 1
        for query_id, query in enumerate(queries):
            max_tables = max(max_tables, len(query.tables))
            max_joins = max(max_joins, len(query.joins))
            max_predicates = max(max_predicates, len(query.predicates))
            for slot, table in enumerate(query.tables):
                table_query_ids.append(query_id)
                table_slots.append(slot)
                try:
                    table_ids.append(encoding.table_index[table])
                except KeyError:
                    raise KeyError(
                        f"table {table!r} is not part of the encoded schema"
                    ) from None
                if needs_samples:
                    sample_probes.append((table, query.predicates_on(table)))
            for slot, join in enumerate(query.joins):
                join_query_ids.append(query_id)
                join_slots.append(slot)
                try:
                    join_ids.append(encoding.join_index[join.canonical])
                except KeyError:
                    raise KeyError(
                        f"join {join.canonical!r} is not part of the encoded schema"
                    ) from None
            for slot, predicate in enumerate(query.predicates):
                predicate_query_ids.append(query_id)
                predicate_slots.append(slot)
                key = f"{predicate.table}.{predicate.column}"
                try:
                    column_ids.append(encoding.column_index[key])
                except KeyError:
                    raise KeyError(
                        f"column {key!r} is not a predicable (non-key) column"
                    ) from None
                operator_ids.append(encoding.operator_index[predicate.operator.value])
                literal_values.append(float(predicate.value))

        as_ids = lambda values: np.asarray(values, dtype=np.int64)  # noqa: E731
        return _GatheredWorkload(
            num_queries=len(queries),
            table_query_ids=as_ids(table_query_ids),
            table_slots=as_ids(table_slots),
            table_ids=as_ids(table_ids),
            sample_probes=sample_probes,
            join_query_ids=as_ids(join_query_ids),
            join_slots=as_ids(join_slots),
            join_ids=as_ids(join_ids),
            predicate_query_ids=as_ids(predicate_query_ids),
            predicate_slots=as_ids(predicate_slots),
            column_ids=as_ids(column_ids),
            operator_ids=as_ids(operator_ids),
            literal_values=np.asarray(literal_values, dtype=np.float64),
            max_tables=max_tables,
            max_joins=max_joins,
            max_predicates=max_predicates,
        )

    def _normalized_literals(
        self, column_ids: np.ndarray, values: np.ndarray
    ) -> np.ndarray:
        """Vectorized literal normalization (always in float64, see module doc)."""
        lookups = self.lookups()
        normalized = (values - lookups.column_min[column_ids]) / lookups.column_span[
            column_ids
        ]
        normalized = np.clip(normalized, 0.0, 1.0)
        normalized[lookups.column_degenerate[column_ids]] = 0.0
        return normalized

    def _vectorized_arrays(
        self, queries: Sequence[Query], featurize_workers: "int | str | None" = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The six padded feature/mask arrays of a workload, built densely."""
        lookups = self.lookups()
        encoding = self.encoding
        dtype = self.dtype
        num_queries = len(queries)
        gathered = self._gathered(queries, featurize_workers)

        table_features = np.zeros(
            (num_queries, gathered.max_tables, self.table_feature_width), dtype=dtype
        )
        table_mask = np.zeros((num_queries, gathered.max_tables), dtype=dtype)
        if gathered.table_query_ids.size:
            rows = gathered.table_query_ids
            slots = gathered.table_slots
            table_mask[rows, slots] = 1.0
            table_features[rows, slots, : encoding.num_tables] = lookups.table_eye[
                gathered.table_ids
            ]
            if self.variant is not FeaturizationVariant.NO_SAMPLES:
                bitmaps = gathered.probe_bitmaps
                if bitmaps is None:
                    bitmaps = self.samples.bitmaps_many(gathered.sample_probes)
                if self.variant is FeaturizationVariant.NUM_SAMPLES:
                    fractions = bitmaps.sum(axis=1) / self.samples.sample_size
                    table_features[rows, slots, encoding.num_tables] = fractions
                else:  # BITMAPS
                    table_features[rows, slots, encoding.num_tables :] = bitmaps
        join_features = np.zeros(
            (num_queries, gathered.max_joins, self.join_feature_width), dtype=dtype
        )
        join_mask = np.zeros((num_queries, gathered.max_joins), dtype=dtype)
        if gathered.join_query_ids.size:
            rows = gathered.join_query_ids
            slots = gathered.join_slots
            join_mask[rows, slots] = 1.0
            join_features[rows, slots] = lookups.join_rows[gathered.join_ids]

        predicate_features = np.zeros(
            (num_queries, gathered.max_predicates, self.predicate_feature_width),
            dtype=dtype,
        )
        predicate_mask = np.zeros((num_queries, gathered.max_predicates), dtype=dtype)
        if gathered.predicate_query_ids.size:
            rows = gathered.predicate_query_ids
            slots = gathered.predicate_slots
            columns = gathered.column_ids
            predicate_mask[rows, slots] = 1.0
            predicate_features[rows, slots, : encoding.num_columns] = lookups.column_eye[
                columns
            ]
            operator_offset = encoding.num_columns
            predicate_features[
                rows, slots, operator_offset : operator_offset + encoding.num_operators
            ] = lookups.operator_eye[gathered.operator_ids]
            predicate_features[rows, slots, -1] = self._normalized_literals(
                columns, gathered.literal_values
            )

        return (
            table_features,
            table_mask,
            join_features,
            join_mask,
            predicate_features,
            predicate_mask,
        )


def _resolve_featurize_workers(budget: "int | str | None") -> int:
    """Featurization worker budget: ``resolve_worker_count`` plus ``0`` == serial.

    ``featurize_workers=0`` reads naturally as "zero worker processes" in
    configurations, so it is accepted as a synonym for ``None``.
    """
    if budget == 0 and isinstance(budget, int) and not isinstance(budget, bool):
        return 1
    return resolve_worker_count(budget)


# ---------------------------------------------------------------------------
# Process-tier plumbing.  The parent encodes query spans as primitive wire
# tuples; each worker process holds a one-time `_WireGatherer` (set up by the
# pool initializer after its BLAS pins) and returns compact id arrays that the
# parent merges in span order.  Nothing here is part of the public API.
# ---------------------------------------------------------------------------

_WORKER_GATHERER: "_WireGatherer | None" = None


def _encode_wire_queries(queries: Sequence[Query]) -> list[tuple]:
    """Primitive wire form of a query span — no ``Query`` objects shipped."""
    return [
        (
            query.tables,
            tuple(join.canonical for join in query.joins),
            tuple(
                (p.table, p.column, p.operator.value, int(p.value))
                for p in query.predicates
            ),
        )
        for query in queries
    ]


class _WireGatherer:
    """Worker-process gather state: encoding indexes plus reduced samples.

    The sample state is a *reduced* database holding only the sampled rows
    of every table, in sampled-row order; probing it with ``arange`` row
    indices evaluates exactly the column values the parent's full-database
    samples would gather, so worker bitmaps are bit-identical to parent
    bitmaps (same predicate-evaluation code path, same values, same order).
    """

    def __init__(
        self,
        encoding: SchemaEncoding,
        variant: FeaturizationVariant,
        samples: "MaterializedSamples | None",
    ):
        self.encoding = encoding
        self.variant = variant
        self.samples = samples

    @classmethod
    def from_payload(cls, state: dict) -> "_WireGatherer":
        encoding = state["encoding"]
        variant = FeaturizationVariant(state["variant"])
        samples = None
        if state["samples"] is not None:
            sample_state = state["samples"]
            schema = sample_state["schema"]
            tables = {
                name: Table(schema.table(name), columns)
                for name, columns in sample_state["columns"].items()
            }
            database = Database(schema, tables)
            row_indices = {
                name: np.arange(database.table(name).num_rows, dtype=np.int64)
                for name in database.table_names
            }
            samples = MaterializedSamples.from_row_indices(
                database, sample_state["sample_size"], row_indices
            )
        return cls(encoding, variant, samples)

    def gather(self, wire_queries: "list[tuple]") -> dict:
        """Flat id arrays of one wire-encoded span (query ids span-local)."""
        encoding = self.encoding
        needs_samples = self.variant is not FeaturizationVariant.NO_SAMPLES
        table_query_ids: list[int] = []
        table_slots: list[int] = []
        table_ids: list[int] = []
        table_probe_ids: list[int] = []
        probe_ids: dict[tuple, int] = {}
        probe_rows: list[np.ndarray] = []
        join_query_ids: list[int] = []
        join_slots: list[int] = []
        join_ids: list[int] = []
        predicate_query_ids: list[int] = []
        predicate_slots: list[int] = []
        column_ids: list[int] = []
        operator_ids: list[int] = []
        literal_values: list[float] = []

        max_tables = max_joins = max_predicates = 1
        for query_id, (tables, joins, predicates) in enumerate(wire_queries):
            max_tables = max(max_tables, len(tables))
            max_joins = max(max_joins, len(joins))
            max_predicates = max(max_predicates, len(predicates))
            predicates_by_table: dict[str, list[Predicate]] = {}
            if needs_samples:
                for table, column, operator, value in predicates:
                    predicates_by_table.setdefault(table, []).append(
                        Predicate(table, column, operator, value)
                    )
            for slot, table in enumerate(tables):
                table_query_ids.append(query_id)
                table_slots.append(slot)
                try:
                    table_ids.append(encoding.table_index[table])
                except KeyError:
                    raise KeyError(
                        f"table {table!r} is not part of the encoded schema"
                    ) from None
                if needs_samples:
                    probes = tuple(predicates_by_table.get(table, ()))
                    key = MaterializedSamples.probe_signature(table, probes)
                    probe_id = probe_ids.get(key)
                    if probe_id is None:
                        probe_id = len(probe_rows)
                        probe_rows.append(self.samples.bitmap(table, probes))
                        probe_ids[key] = probe_id
                    table_probe_ids.append(probe_id)
            for slot, join in enumerate(joins):
                join_query_ids.append(query_id)
                join_slots.append(slot)
                try:
                    join_ids.append(encoding.join_index[join])
                except KeyError:
                    raise KeyError(
                        f"join {join!r} is not part of the encoded schema"
                    ) from None
            for slot, (table, column, operator, value) in enumerate(predicates):
                predicate_query_ids.append(query_id)
                predicate_slots.append(slot)
                key = f"{table}.{column}"
                try:
                    column_ids.append(encoding.column_index[key])
                except KeyError:
                    raise KeyError(
                        f"column {key!r} is not a predicable (non-key) column"
                    ) from None
                operator_ids.append(encoding.operator_index[operator])
                literal_values.append(float(value))

        as_ids = lambda values: np.asarray(values, dtype=np.int64)  # noqa: E731
        sample_width = self.samples.sample_size if needs_samples else 0
        return {
            "num_queries": len(wire_queries),
            "table_query_ids": as_ids(table_query_ids),
            "table_slots": as_ids(table_slots),
            "table_ids": as_ids(table_ids),
            "table_probe_ids": as_ids(table_probe_ids) if needs_samples else None,
            "probe_rows": (
                np.stack(probe_rows)
                if probe_rows
                else np.zeros((0, sample_width), dtype=bool)
            )
            if needs_samples
            else None,
            "join_query_ids": as_ids(join_query_ids),
            "join_slots": as_ids(join_slots),
            "join_ids": as_ids(join_ids),
            "predicate_query_ids": as_ids(predicate_query_ids),
            "predicate_slots": as_ids(predicate_slots),
            "column_ids": as_ids(column_ids),
            "operator_ids": as_ids(operator_ids),
            "literal_values": np.asarray(literal_values, dtype=np.float64),
            "max_tables": max_tables,
            "max_joins": max_joins,
            "max_predicates": max_predicates,
        }


def _featurize_worker_configure(payload: bytes) -> None:
    """Pool initializer: build this worker's gather state once (post-pinning)."""
    global _WORKER_GATHERER
    _WORKER_GATHERER = _WireGatherer.from_payload(pickle.loads(payload))


def _featurize_worker_gather(wire_queries: "list[tuple]") -> dict:
    """Pool task: gather one wire-encoded span against the worker state."""
    if _WORKER_GATHERER is None:  # pragma: no cover - defensive
        raise RuntimeError("featurization worker used before initialization")
    return _WORKER_GATHERER.gather(wire_queries)


def _merge_gathered_parts(
    parts: Sequence[dict], spans: Sequence[tuple[int, int]], num_queries: int
) -> _GatheredWorkload:
    """Merge span-ordered worker parts into one :class:`_GatheredWorkload`.

    Query ids are shifted by each span's start; every per-element array is a
    straight concatenation in span (== input) order, so the merged workload
    is bit-identical to a serial gather over the whole query list.
    """

    def concatenated(key: str) -> np.ndarray:
        return np.concatenate([part[key] for part in parts])

    def shifted(key: str) -> np.ndarray:
        return np.concatenate(
            [part[key] + start for part, (start, _) in zip(parts, spans)]
        )

    probe_bitmaps = None
    if parts[0]["probe_rows"] is not None:
        probe_bitmaps = np.concatenate(
            [part["probe_rows"][part["table_probe_ids"]] for part in parts], axis=0
        )

    return _GatheredWorkload(
        num_queries=num_queries,
        table_query_ids=shifted("table_query_ids"),
        table_slots=concatenated("table_slots"),
        table_ids=concatenated("table_ids"),
        sample_probes=[],
        join_query_ids=shifted("join_query_ids"),
        join_slots=concatenated("join_slots"),
        join_ids=concatenated("join_ids"),
        predicate_query_ids=shifted("predicate_query_ids"),
        predicate_slots=concatenated("predicate_slots"),
        column_ids=concatenated("column_ids"),
        operator_ids=concatenated("operator_ids"),
        literal_values=concatenated("literal_values"),
        max_tables=max(part["max_tables"] for part in parts),
        max_joins=max(part["max_joins"] for part in parts),
        max_predicates=max(part["max_predicates"] for part in parts),
        probe_bitmaps=probe_bitmaps,
    )
