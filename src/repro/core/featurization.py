"""Query featurization: queries become collections of feature-vector sets.

Following Sections 3.1 and 3.4 of the paper, a query ``(T_q, J_q, P_q)``
becomes three sets of fixed-width vectors:

* one vector per table — a one-hot table id, optionally followed by the
  normalized number of qualifying materialized samples or the full
  qualifying-sample bitmap,
* one vector per join — a one-hot join id,
* one vector per predicate — one-hot column id, one-hot operator id and the
  literal normalized to [0, 1] with the column's min/max.

Queries without joins or without predicates simply have empty join/predicate
sets; the batching layer pads them and the model's masked average ignores the
padding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import FeaturizationVariant
from repro.core.encoding import SchemaEncoding
from repro.core.normalization import ValueNormalizer
from repro.db.query import Query
from repro.db.sampling import MaterializedSamples

__all__ = ["FeaturizedQuery", "QueryFeaturizer"]


@dataclass(frozen=True)
class FeaturizedQuery:
    """Feature sets of a single query.

    Each attribute is a 2-D array of shape ``(set size, feature width)``; the
    join and predicate arrays may have zero rows.
    """

    table_features: np.ndarray
    join_features: np.ndarray
    predicate_features: np.ndarray

    @property
    def num_tables(self) -> int:
        return self.table_features.shape[0]

    @property
    def num_joins(self) -> int:
        return self.join_features.shape[0]

    @property
    def num_predicates(self) -> int:
        return self.predicate_features.shape[0]


class QueryFeaturizer:
    """Turns queries into :class:`FeaturizedQuery` instances.

    Parameters
    ----------
    encoding:
        One-hot vocabularies derived from the schema.
    value_normalizer:
        Per-column min/max bounds for literal normalization.
    samples:
        Materialized base-table samples; required for the ``NUM_SAMPLES`` and
        ``BITMAPS`` variants, ignored by ``NO_SAMPLES``.
    variant:
        Which sampling enrichment to attach to table vectors (Figure 4).
    """

    def __init__(
        self,
        encoding: SchemaEncoding,
        value_normalizer: ValueNormalizer,
        samples: MaterializedSamples | None = None,
        variant: FeaturizationVariant = FeaturizationVariant.BITMAPS,
    ):
        variant = FeaturizationVariant(variant)
        if variant is not FeaturizationVariant.NO_SAMPLES and samples is None:
            raise ValueError(f"variant {variant.value!r} requires materialized samples")
        self.encoding = encoding
        self.value_normalizer = value_normalizer
        self.samples = samples
        self.variant = variant

    # -- feature widths --------------------------------------------------
    @property
    def sample_feature_width(self) -> int:
        if self.variant is FeaturizationVariant.NO_SAMPLES:
            return 0
        if self.variant is FeaturizationVariant.NUM_SAMPLES:
            return 1
        return self.samples.sample_size  # BITMAPS

    @property
    def table_feature_width(self) -> int:
        return self.encoding.num_tables + self.sample_feature_width

    @property
    def join_feature_width(self) -> int:
        # A query without joins still needs a non-degenerate feature width so
        # the join module has well-defined parameters.
        return max(self.encoding.num_joins, 1)

    @property
    def predicate_feature_width(self) -> int:
        return self.encoding.num_columns + self.encoding.num_operators + 1

    # -- featurization ---------------------------------------------------
    def featurize(self, query: Query) -> FeaturizedQuery:
        """Featurize one query (tables, joins, predicates)."""
        table_rows = [self._table_vector(query, table) for table in query.tables]
        join_rows = [self._join_vector(join) for join in query.joins]
        predicate_rows = [self._predicate_vector(predicate) for predicate in query.predicates]
        return FeaturizedQuery(
            table_features=np.vstack(table_rows)
            if table_rows
            else np.zeros((0, self.table_feature_width)),
            join_features=np.vstack(join_rows)
            if join_rows
            else np.zeros((0, self.join_feature_width)),
            predicate_features=np.vstack(predicate_rows)
            if predicate_rows
            else np.zeros((0, self.predicate_feature_width)),
        )

    def featurize_many(self, queries: list[Query]) -> list[FeaturizedQuery]:
        return [self.featurize(query) for query in queries]

    # -- per-element vectors ---------------------------------------------
    def _table_vector(self, query: Query, table: str) -> np.ndarray:
        one_hot = self.encoding.table_one_hot(table)
        if self.variant is FeaturizationVariant.NO_SAMPLES:
            return one_hot
        predicates = query.predicates_on(table)
        if self.variant is FeaturizationVariant.NUM_SAMPLES:
            count = self.samples.qualifying_count(table, predicates)
            fraction = count / self.samples.sample_size
            return np.concatenate((one_hot, [fraction]))
        bitmap = self.samples.bitmap(table, predicates).astype(np.float64)
        return np.concatenate((one_hot, bitmap))

    def _join_vector(self, join) -> np.ndarray:
        vector = np.zeros(self.join_feature_width, dtype=np.float64)
        vector[: self.encoding.num_joins] = self.encoding.join_one_hot(join)
        return vector

    def _predicate_vector(self, predicate) -> np.ndarray:
        column_one_hot = self.encoding.column_one_hot(predicate.table, predicate.column)
        operator_one_hot = self.encoding.operator_one_hot(predicate.operator)
        normalized_value = self.value_normalizer.normalize(
            predicate.table, predicate.column, predicate.value
        )
        return np.concatenate((column_one_hot, operator_one_hot, [normalized_value]))
