"""Hyperparameters and featurization variants of MSCN.

The default values are the paper's best configuration from the grid search in
Section 4.6: 100 epochs, batch size 1024, 256 hidden units, learning rate
0.001, trained with the mean q-error loss, using 1000 materialized samples
per table and bitmap features.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["FeaturizationVariant", "LossKind", "MSCNConfig"]


class FeaturizationVariant(str, enum.Enum):
    """Which sampling information is attached to each table feature vector.

    Corresponds to the three model variants of Figure 4:

    * ``NO_SAMPLES`` — pure query features (one-hot table id only),
    * ``NUM_SAMPLES`` — one-hot table id plus the normalized number of
      qualifying materialized samples,
    * ``BITMAPS`` — one-hot table id plus the full qualifying-sample bitmap.
    """

    NO_SAMPLES = "no_samples"
    NUM_SAMPLES = "num_samples"
    BITMAPS = "bitmaps"


class LossKind(str, enum.Enum):
    """Training objectives explored in Section 4.8."""

    Q_ERROR = "q_error"
    MSE = "mse"
    GEOMETRIC_Q_ERROR = "geometric_q_error"


@dataclass(frozen=True)
class MSCNConfig:
    """Complete configuration of an MSCN estimator."""

    hidden_units: int = 256
    epochs: int = 100
    batch_size: int = 1024
    learning_rate: float = 1e-3
    loss: LossKind = LossKind.Q_ERROR
    variant: FeaturizationVariant = FeaturizationVariant.BITMAPS
    num_samples: int = 1000
    validation_fraction: float = 0.1
    seed: int = 42
    shuffle: bool = True

    def __post_init__(self) -> None:
        if self.hidden_units <= 0:
            raise ValueError("hidden_units must be positive")
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= self.validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in [0, 1)")
        if self.num_samples <= 0:
            raise ValueError("num_samples must be positive")
        # Accept plain strings for convenience.
        if not isinstance(self.loss, LossKind):
            object.__setattr__(self, "loss", LossKind(self.loss))
        if not isinstance(self.variant, FeaturizationVariant):
            object.__setattr__(self, "variant", FeaturizationVariant(self.variant))

    def replace(self, **overrides) -> "MSCNConfig":
        """Return a copy of this configuration with fields replaced."""
        from dataclasses import replace as dataclass_replace

        return dataclass_replace(self, **overrides)
