"""Hyperparameters and featurization variants of MSCN.

The default values are the paper's best configuration from the grid search in
Section 4.6: 100 epochs, batch size 1024, 256 hidden units, learning rate
0.001, trained with the mean q-error loss, using 1000 materialized samples
per table and bitmap features.

``dtype`` selects the compute precision of the whole pipeline — featurization
lookup tables, datasets, model weights, optimizer state and the fused
inference engine.  The default is ``float32``: serving accuracy is unaffected
(the model's own approximation error dwarfs single precision) while matmuls
move half the memory.  Use ``float64`` for bit-exact comparisons against the
legacy double-precision path.

Four knobs configure the serving-side inference tier on top of the training
dtype: ``inference_precision`` selects the engine's weight tier (``None``
inherits ``dtype``; ``float16``/``int8`` serve quantized weight snapshots
with float32 compute), ``engine_replicas`` sizes the
:class:`~repro.core.pool.EnginePool` that parallelizes large batches across
cores, ``inference_chunk_size`` fixes the queries-per-chunk of
``estimate_many`` (``None`` falls back to ``batch_size``), and
``scratch_rows_cap`` bounds the engines' grow-only scratch buffers so one
huge batch cannot permanently pin peak memory in a long-lived service.

``featurize_workers`` budgets the process-level featurization tier (see
:mod:`repro.core.featurization`): ``None``/``0`` keep featurization
in-process (compiled-plan path, the default), ``"auto"`` uses the CPU count,
and a positive integer spawns that many featurization worker processes for
large workloads — training-corpus featurization in
:meth:`~repro.core.estimator.MSCNEstimator.fit` above all.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = ["FeaturizationVariant", "LossKind", "MSCNConfig"]

_SUPPORTED_DTYPES = ("float32", "float64")
_SUPPORTED_PRECISIONS = ("float32", "float64", "float16", "int8")


class FeaturizationVariant(str, enum.Enum):
    """Which sampling information is attached to each table feature vector.

    Corresponds to the three model variants of Figure 4:

    * ``NO_SAMPLES`` — pure query features (one-hot table id only),
    * ``NUM_SAMPLES`` — one-hot table id plus the normalized number of
      qualifying materialized samples,
    * ``BITMAPS`` — one-hot table id plus the full qualifying-sample bitmap.
    """

    NO_SAMPLES = "no_samples"
    NUM_SAMPLES = "num_samples"
    BITMAPS = "bitmaps"


class LossKind(str, enum.Enum):
    """Training objectives explored in Section 4.8."""

    Q_ERROR = "q_error"
    MSE = "mse"
    GEOMETRIC_Q_ERROR = "geometric_q_error"


@dataclass(frozen=True)
class MSCNConfig:
    """Complete configuration of an MSCN estimator."""

    hidden_units: int = 256
    epochs: int = 100
    batch_size: int = 1024
    learning_rate: float = 1e-3
    loss: LossKind = LossKind.Q_ERROR
    variant: FeaturizationVariant = FeaturizationVariant.BITMAPS
    num_samples: int = 1000
    validation_fraction: float = 0.1
    seed: int = 42
    shuffle: bool = True
    dtype: str = "float32"
    fused_inference: bool = True
    bucket_by_length: bool = True
    inference_precision: str | None = None
    engine_replicas: int = 1
    inference_chunk_size: int | None = None
    scratch_rows_cap: int | None = None
    featurize_workers: "int | str | None" = None

    @property
    def np_dtype(self) -> np.dtype:
        """The numpy dtype all pipeline stages compute in."""
        return np.dtype(self.dtype)

    def __post_init__(self) -> None:
        if self.hidden_units <= 0:
            raise ValueError("hidden_units must be positive")
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= self.validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in [0, 1)")
        if self.num_samples <= 0:
            raise ValueError("num_samples must be positive")
        # Accept numpy dtypes / aliases for convenience, but pin the stored
        # value to the canonical string so configs stay JSON-serializable.
        canonical = np.dtype(self.dtype).name
        if canonical not in _SUPPORTED_DTYPES:
            raise ValueError(f"dtype must be one of {_SUPPORTED_DTYPES}, got {self.dtype!r}")
        object.__setattr__(self, "dtype", canonical)
        if self.inference_precision is not None:
            try:
                precision = np.dtype(self.inference_precision).name
            except TypeError:
                precision = str(self.inference_precision)
            if precision not in _SUPPORTED_PRECISIONS:
                raise ValueError(
                    f"inference_precision must be one of {_SUPPORTED_PRECISIONS} "
                    f"(or None to inherit dtype), got {self.inference_precision!r}"
                )
            object.__setattr__(self, "inference_precision", precision)
        if self.engine_replicas < 1:
            raise ValueError("engine_replicas must be >= 1")
        if self.inference_chunk_size is not None and self.inference_chunk_size < 1:
            raise ValueError(
                "inference_chunk_size must be >= 1 (the number of queries per "
                "fused inference chunk), or None to fall back to batch_size"
            )
        if self.scratch_rows_cap is not None and self.scratch_rows_cap < 1:
            raise ValueError("scratch_rows_cap must be >= 1 (or None for unbounded)")
        # Validate the featurization worker budget eagerly (None/0 → serial,
        # "auto" → CPU count, positive int → literal); the import is local
        # because this module must stay importable before numpy-heavy code.
        from repro.core.featurization import _resolve_featurize_workers

        _resolve_featurize_workers(self.featurize_workers)
        # Accept plain strings for convenience.
        if not isinstance(self.loss, LossKind):
            object.__setattr__(self, "loss", LossKind(self.loss))
        if not isinstance(self.variant, FeaturizationVariant):
            object.__setattr__(self, "variant", FeaturizationVariant(self.variant))

    def replace(self, **overrides) -> "MSCNConfig":
        """Return a copy of this configuration with fields replaced."""
        from dataclasses import replace as dataclass_replace

        return dataclass_replace(self, **overrides)
