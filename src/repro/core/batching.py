"""Mini-batch construction: padded batches and ragged (CSR-style) datasets.

Section 3.2 of the paper: "we pad all samples with zero-valued feature
vectors that act as dummy set elements so that all samples within a
mini-batch have the same number of set elements.  We mask out dummy set
elements in the averaging operation."  :class:`Batch` holds the padded
feature tensors and the corresponding binary masks; :func:`collate` builds a
batch from featurized queries.

Two whole-workload containers avoid per-epoch collation work:

* :class:`FeaturizedDataset` — the *padded* layout: six dense arrays covering
  every query, mini-batches are plain index slicing.  The per-set reciprocal
  real-element counts are precomputed once here (and carried on every sliced
  :class:`Batch`), so the model's masked mean pooling skips the per-forward
  count reduction; masks reach the pooling primitives as zero-copy
  ``(batch, set, 1)`` views that hit their pre-validated fast path.
* :class:`RaggedDataset` — the *ragged* layout: per set, only the real
  elements, flattened to ``(total_elements, width)`` with per-query CSR
  offsets.  No padding exists at all, so the per-element MLPs touch exactly
  the FLOPs the workload requires; pooling is a segment reduction over the
  offsets.  This is the layout of the fast training and serving paths.

:func:`iterate_ragged_minibatches` optionally orders queries into
length-homogeneous buckets before batching, so gathered training batches have
near-uniform row counts per set (better matmul shapes, no pathological
mixed-size batches) while batch order stays shuffled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.core.featurization import FeaturizedQuery

__all__ = [
    "Batch",
    "FeaturizedDataset",
    "RaggedSet",
    "RaggedDataset",
    "as_dataset",
    "as_ragged_dataset",
    "collate",
    "iterate_minibatches",
    "iterate_ragged_minibatches",
    "offsets_from_lengths",
]


@dataclass(frozen=True)
class Batch:
    """A padded mini-batch of featurized queries.

    Feature arrays have shape ``(batch, max set size, feature width)``; mask
    arrays have shape ``(batch, max set size)`` with ones marking real
    elements.  ``labels`` (normalized cardinalities) and ``cardinalities``
    (true result sizes) are optional and only present for training batches.

    The three ``*_inv_counts`` columns are optional precomputed reciprocal
    real-element counts (``1 / max(#real elements, 1)``, shape ``(batch, 1)``)
    that let the model skip the per-forward mask reduction; they are filled in
    when the batch is sliced out of a :class:`FeaturizedDataset`.
    """

    table_features: np.ndarray
    table_mask: np.ndarray
    join_features: np.ndarray
    join_mask: np.ndarray
    predicate_features: np.ndarray
    predicate_mask: np.ndarray
    labels: np.ndarray | None = None
    cardinalities: np.ndarray | None = None
    table_inv_counts: np.ndarray | None = None
    join_inv_counts: np.ndarray | None = None
    predicate_inv_counts: np.ndarray | None = None

    @property
    def size(self) -> int:
        return self.table_features.shape[0]


def _column_vector(values: np.ndarray, expected: int, name: str) -> np.ndarray:
    """Validate per-query scalars and reshape them to a ``(n, 1)`` column."""
    values = np.asarray(values, dtype=np.float64).reshape(-1, 1)
    if values.shape[0] != expected:
        raise ValueError(f"{name} length does not match batch size")
    return values


def _pad_set(
    feature_sets: Sequence[np.ndarray], feature_width: int, min_size: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Pad a list of (set size, width) arrays into a dense tensor plus mask."""
    batch_size = len(feature_sets)
    max_size = max([fs.shape[0] for fs in feature_sets] + [min_size])
    # The padded arrays inherit the featurizer's compute dtype.
    dtype = np.result_type(*feature_sets) if feature_sets else np.float64
    features = np.zeros((batch_size, max_size, feature_width), dtype=dtype)
    mask = np.zeros((batch_size, max_size), dtype=dtype)
    for position, feature_set in enumerate(feature_sets):
        count = feature_set.shape[0]
        if count:
            features[position, :count, :] = feature_set
            mask[position, :count] = 1.0
    return features, mask


def collate(
    featurized: Sequence[FeaturizedQuery],
    labels: np.ndarray | None = None,
    cardinalities: np.ndarray | None = None,
) -> Batch:
    """Assemble featurized queries (and optional labels) into a :class:`Batch`."""
    if not featurized:
        raise ValueError("cannot collate an empty batch")
    table_width = featurized[0].table_features.shape[1]
    join_width = featurized[0].join_features.shape[1]
    predicate_width = featurized[0].predicate_features.shape[1]
    table_features, table_mask = _pad_set([f.table_features for f in featurized], table_width)
    join_features, join_mask = _pad_set([f.join_features for f in featurized], join_width)
    predicate_features, predicate_mask = _pad_set(
        [f.predicate_features for f in featurized], predicate_width
    )
    if labels is not None:
        labels = _column_vector(labels, len(featurized), "labels")
    if cardinalities is not None:
        cardinalities = _column_vector(cardinalities, len(featurized), "cardinalities")
    return Batch(
        table_features=table_features,
        table_mask=table_mask,
        join_features=join_features,
        join_mask=join_mask,
        predicate_features=predicate_features,
        predicate_mask=predicate_mask,
        labels=labels,
        cardinalities=cardinalities,
    )


def offsets_from_lengths(lengths) -> np.ndarray:
    """CSR row boundaries (``n + 1`` int64 offsets) from per-segment lengths."""
    lengths = np.asarray(lengths)
    offsets = np.zeros(lengths.shape[0] + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    return offsets


# ----------------------------------------------------------------------
# Ragged (CSR-style) layout
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RaggedSet:
    """One variable-sized set over a workload, stored without padding.

    ``features`` stacks the real elements of every query's set in query order,
    shape ``(total_elements, feature_width)``; ``offsets`` holds the
    ``num_queries + 1`` CSR row boundaries (query ``i`` owns rows
    ``offsets[i]:offsets[i + 1]``).  ``lengths`` and the reciprocal counts
    used by mean pooling are derived once and cached.
    """

    features: np.ndarray
    offsets: np.ndarray
    lengths: np.ndarray = field(init=False, repr=False)
    inv_counts: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        offsets = np.ascontiguousarray(self.offsets, dtype=np.int64)
        if offsets.ndim != 1 or offsets.shape[0] < 1:
            raise ValueError("offsets must be 1-D with at least one boundary")
        if self.features.ndim != 2:
            raise ValueError("ragged features must be 2-D (total_elements, width)")
        if offsets[-1] != self.features.shape[0]:
            raise ValueError(
                f"offsets cover {offsets[-1]} rows but features has "
                f"{self.features.shape[0]}"
            )
        lengths = np.diff(offsets)
        if (lengths < 0).any():
            raise ValueError("offsets must be non-decreasing")
        inv_counts = 1.0 / np.maximum(lengths, 1.0)
        object.__setattr__(self, "offsets", offsets)
        object.__setattr__(self, "lengths", lengths)
        object.__setattr__(
            self, "inv_counts", inv_counts.astype(self.features.dtype)[:, None]
        )

    @property
    def num_segments(self) -> int:
        return self.lengths.shape[0]

    @property
    def width(self) -> int:
        return self.features.shape[1]

    def slice(self, start: int, stop: int) -> "RaggedSet":
        """A contiguous query range as views into the flat arrays (no copy)."""
        offsets = self.offsets[start : stop + 1]
        base = offsets[0]
        return RaggedSet(
            features=self.features[base : offsets[-1]], offsets=offsets - base
        )

    def take(self, indices: np.ndarray) -> "RaggedSet":
        """Gather an arbitrary selection of queries into a new ragged set."""
        indices = np.asarray(indices)
        starts = self.offsets[:-1][indices]
        lengths = self.lengths[indices]
        offsets = offsets_from_lengths(lengths)
        total = int(offsets[-1])
        # Row gather: for output row r in segment j, source row is
        # starts[j] + (r - offsets[j]).
        rows = np.repeat(starts - offsets[:-1], lengths) + np.arange(total)
        return RaggedSet(features=self.features[rows], offsets=offsets)


@dataclass(frozen=True)
class RaggedDataset:
    """A whole workload in the ragged layout (tables / joins / predicates).

    Doubles as the mini-batch type of the ragged compute paths: slicing or
    gathering a ``RaggedDataset`` yields another ``RaggedDataset``.
    """

    tables: RaggedSet
    joins: RaggedSet
    predicates: RaggedSet
    labels: np.ndarray | None = None
    cardinalities: np.ndarray | None = None

    def __post_init__(self) -> None:
        sizes = {
            self.tables.num_segments,
            self.joins.num_segments,
            self.predicates.num_segments,
        }
        if len(sizes) != 1:
            raise ValueError(f"set segment counts disagree: {sorted(sizes)}")

    @property
    def size(self) -> int:
        return self.tables.num_segments

    def __len__(self) -> int:
        return self.size

    @classmethod
    def from_featurized(
        cls,
        featurized: Sequence[FeaturizedQuery],
        labels: np.ndarray | None = None,
        cardinalities: np.ndarray | None = None,
    ) -> "RaggedDataset":
        """Stack per-query featurizations into the ragged layout."""
        if not featurized:
            raise ValueError("cannot build a ragged dataset from zero queries")

        def stack(arrays: list[np.ndarray]) -> RaggedSet:
            offsets = offsets_from_lengths([a.shape[0] for a in arrays])
            return RaggedSet(features=np.concatenate(arrays, axis=0), offsets=offsets)

        if labels is not None:
            labels = _column_vector(labels, len(featurized), "labels")
        if cardinalities is not None:
            cardinalities = _column_vector(cardinalities, len(featurized), "cardinalities")
        return cls(
            tables=stack([f.table_features for f in featurized]),
            joins=stack([f.join_features for f in featurized]),
            predicates=stack([f.predicate_features for f in featurized]),
            labels=labels,
            cardinalities=cardinalities,
        )

    def slice(self, start: int, stop: int) -> "RaggedDataset":
        """A contiguous query range (views, no copies)."""
        start, stop, _ = slice(start, stop).indices(self.size)
        return RaggedDataset(
            tables=self.tables.slice(start, stop),
            joins=self.joins.slice(start, stop),
            predicates=self.predicates.slice(start, stop),
            labels=self.labels[start:stop] if self.labels is not None else None,
            cardinalities=(
                self.cardinalities[start:stop] if self.cardinalities is not None else None
            ),
        )

    def take(
        self,
        indices: np.ndarray,
        labels: np.ndarray | None = None,
        cardinalities: np.ndarray | None = None,
    ) -> "RaggedDataset":
        """Gather an arbitrary selection of queries.

        ``labels``/``cardinalities`` override the stored columns; they must
        already be aligned with ``indices``.
        """
        indices = np.asarray(indices)
        if labels is not None:
            labels = _column_vector(labels, indices.shape[0], "labels")
        elif self.labels is not None:
            labels = self.labels[indices]
        if cardinalities is not None:
            cardinalities = _column_vector(cardinalities, indices.shape[0], "cardinalities")
        elif self.cardinalities is not None:
            cardinalities = self.cardinalities[indices]
        return RaggedDataset(
            tables=self.tables.take(indices),
            joins=self.joins.take(indices),
            predicates=self.predicates.take(indices),
            labels=labels,
            cardinalities=cardinalities,
        )

    @property
    def total_elements(self) -> np.ndarray:
        """Per-query total set elements (used for length bucketing)."""
        return self.tables.lengths + self.joins.lengths + self.predicates.lengths

    def to_padded(self) -> "FeaturizedDataset":
        """Re-pad into a :class:`FeaturizedDataset` (inverse of ``to_ragged``).

        Used by the legacy padded inference fallback; each set is scattered
        into ``(n, max length, width)`` with a matching mask.
        """

        def pad(ragged: RaggedSet) -> tuple[np.ndarray, np.ndarray]:
            n = ragged.num_segments
            max_length = max(int(ragged.lengths.max()) if n else 0, 1)
            dtype = ragged.features.dtype
            features = np.zeros((n, max_length, ragged.width), dtype=dtype)
            mask = np.zeros((n, max_length), dtype=dtype)
            rows = np.repeat(np.arange(n), ragged.lengths)
            slots = np.arange(ragged.features.shape[0]) - np.repeat(
                ragged.offsets[:-1], ragged.lengths
            )
            features[rows, slots] = ragged.features
            mask[rows, slots] = 1.0
            return features, mask

        table_features, table_mask = pad(self.tables)
        join_features, join_mask = pad(self.joins)
        predicate_features, predicate_mask = pad(self.predicates)
        return FeaturizedDataset(
            table_features=table_features,
            table_mask=table_mask,
            join_features=join_features,
            join_mask=join_mask,
            predicate_features=predicate_features,
            predicate_mask=predicate_mask,
            labels=self.labels,
            cardinalities=self.cardinalities,
        )


@dataclass(frozen=True)
class FeaturizedDataset:
    """Pre-collated feature tensors of a whole workload (padded layout).

    Holds the same six padded arrays a :class:`Batch` carries, covering every
    query of the workload, plus optional per-query ``labels`` and
    ``cardinalities`` stored as ``(n, 1)`` columns.  Mini-batches are produced
    by :meth:`batch` — pure array slicing with no padding work.

    The ``(n, 1)`` reciprocal real-element counts of every set are computed
    once here and carried on each sliced :class:`Batch`, so every downstream
    forward pass skips the per-forward mask count reduction.
    """

    table_features: np.ndarray
    table_mask: np.ndarray
    join_features: np.ndarray
    join_mask: np.ndarray
    predicate_features: np.ndarray
    predicate_mask: np.ndarray
    labels: np.ndarray | None = None
    cardinalities: np.ndarray | None = None
    table_inv_counts: np.ndarray = field(init=False, repr=False)
    join_inv_counts: np.ndarray = field(init=False, repr=False)
    predicate_inv_counts: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        for name in ("table", "join", "predicate"):
            mask = getattr(self, f"{name}_mask")
            counts = np.maximum(mask.sum(axis=1, keepdims=True), 1.0)
            object.__setattr__(self, f"{name}_inv_counts", 1.0 / counts)

    @property
    def size(self) -> int:
        return self.table_features.shape[0]

    def __len__(self) -> int:
        return self.size

    @classmethod
    def from_featurized(
        cls,
        featurized: Sequence[FeaturizedQuery],
        labels: np.ndarray | None = None,
        cardinalities: np.ndarray | None = None,
    ) -> "FeaturizedDataset":
        """Collate per-query featurizations once into a dataset (compat path)."""
        batch = collate(featurized, labels=labels, cardinalities=cardinalities)
        return cls.from_batch(batch)

    @classmethod
    def from_batch(cls, batch: Batch) -> "FeaturizedDataset":
        """Adopt the padded tensors of an already-collated :class:`Batch`."""
        return cls(
            table_features=batch.table_features,
            table_mask=batch.table_mask,
            join_features=batch.join_features,
            join_mask=batch.join_mask,
            predicate_features=batch.predicate_features,
            predicate_mask=batch.predicate_mask,
            labels=batch.labels,
            cardinalities=batch.cardinalities,
        )

    def batch(
        self,
        indices: np.ndarray | slice | None = None,
        labels: np.ndarray | None = None,
        cardinalities: np.ndarray | None = None,
    ) -> Batch:
        """A :class:`Batch` of the selected queries (all of them by default).

        ``labels``/``cardinalities`` override the stored columns; they must
        already be aligned with ``indices`` and are reshaped to ``(n, 1)``
        columns exactly like :func:`collate` does.
        """
        if indices is None:
            indices = slice(None)
        table_features = self.table_features[indices]
        size = table_features.shape[0]
        if labels is not None:
            labels = _column_vector(labels, size, "labels")
        elif self.labels is not None:
            labels = self.labels[indices]
        if cardinalities is not None:
            cardinalities = _column_vector(cardinalities, size, "cardinalities")
        elif self.cardinalities is not None:
            cardinalities = self.cardinalities[indices]
        return Batch(
            table_features=table_features,
            table_mask=self.table_mask[indices],
            join_features=self.join_features[indices],
            join_mask=self.join_mask[indices],
            predicate_features=self.predicate_features[indices],
            predicate_mask=self.predicate_mask[indices],
            labels=labels,
            cardinalities=cardinalities,
            table_inv_counts=self.table_inv_counts[indices],
            join_inv_counts=self.join_inv_counts[indices],
            predicate_inv_counts=self.predicate_inv_counts[indices],
        )

    def to_ragged(self) -> RaggedDataset:
        """Strip the padding: gather real elements into a :class:`RaggedDataset`.

        Real elements always occupy the leading slots of each padded row, so
        a boolean-mask gather preserves both query order and slot order.
        """

        def strip(features: np.ndarray, mask: np.ndarray) -> RaggedSet:
            real = mask > 0
            offsets = offsets_from_lengths(real.sum(axis=1))
            return RaggedSet(features=features[real], offsets=offsets)

        return RaggedDataset(
            tables=strip(self.table_features, self.table_mask),
            joins=strip(self.join_features, self.join_mask),
            predicates=strip(self.predicate_features, self.predicate_mask),
            labels=self.labels,
            cardinalities=self.cardinalities,
        )


def as_dataset(
    features: "FeaturizedDataset | Sequence[FeaturizedQuery]",
) -> FeaturizedDataset:
    """Coerce either input style of the training/prediction APIs to a dataset."""
    if isinstance(features, FeaturizedDataset):
        return features
    return FeaturizedDataset.from_featurized(list(features))


def as_ragged_dataset(
    features: "RaggedDataset | FeaturizedDataset | Sequence[FeaturizedQuery]",
) -> RaggedDataset:
    """Coerce any supported feature container to the ragged layout."""
    if isinstance(features, RaggedDataset):
        return features
    if isinstance(features, FeaturizedDataset):
        return features.to_ragged()
    return RaggedDataset.from_featurized(list(features))


def iterate_minibatches(
    featurized: FeaturizedDataset | Sequence[FeaturizedQuery],
    labels: np.ndarray,
    cardinalities: np.ndarray,
    batch_size: int,
    rng: np.random.Generator | None = None,
) -> Iterator[Batch]:
    """Yield shuffled mini-batches for one training epoch (padded layout).

    A :class:`FeaturizedDataset` is sliced directly (the fast path); a
    sequence of :class:`FeaturizedQuery` falls back to per-batch collation.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    is_dataset = isinstance(featurized, FeaturizedDataset)
    count = featurized.size if is_dataset else len(featurized)
    order = np.arange(count)
    if rng is not None:
        rng.shuffle(order)
    labels = np.asarray(labels, dtype=np.float64)
    cardinalities = np.asarray(cardinalities, dtype=np.float64)
    for start in range(0, count, batch_size):
        indices = order[start : start + batch_size]
        if is_dataset:
            yield featurized.batch(
                indices,
                labels=labels[indices],
                cardinalities=cardinalities[indices],
            )
        else:
            yield collate(
                [featurized[i] for i in indices],
                labels=labels[indices],
                cardinalities=cardinalities[indices],
            )


def iterate_ragged_minibatches(
    dataset: RaggedDataset,
    labels: np.ndarray,
    cardinalities: np.ndarray,
    batch_size: int,
    rng: np.random.Generator | None = None,
    bucket_by_length: bool = True,
) -> Iterator[RaggedDataset]:
    """Yield mini-batches of a :class:`RaggedDataset` for one training epoch.

    With ``rng`` and ``bucket_by_length``, queries are first shuffled, then
    stably ordered by their total set-element count and chunked, and finally
    the chunk order is shuffled: batches are length-homogeneous (uniform
    gather and matmul shapes) while the epoch still visits batches — and ties
    within a bucket — in random order.  Without ``rng`` the dataset order is
    kept as-is.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    count = dataset.size
    order = np.arange(count)
    if rng is not None:
        rng.shuffle(order)
        if bucket_by_length:
            order = order[np.argsort(dataset.total_elements[order], kind="stable")]
    labels = np.asarray(labels, dtype=np.float64)
    cardinalities = np.asarray(cardinalities, dtype=np.float64)
    starts = np.arange(0, count, batch_size)
    if rng is not None and bucket_by_length:
        rng.shuffle(starts)
    for start in starts:
        indices = order[start : start + batch_size]
        yield dataset.take(
            indices,
            labels=labels[indices],
            cardinalities=cardinalities[indices],
        )
