"""Mini-batch construction: zero-padding variable-sized sets plus masks.

Section 3.2 of the paper: "we pad all samples with zero-valued feature
vectors that act as dummy set elements so that all samples within a
mini-batch have the same number of set elements.  We mask out dummy set
elements in the averaging operation."  :class:`Batch` holds the padded
feature tensors and the corresponding binary masks; :func:`collate` builds a
batch from featurized queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.core.featurization import FeaturizedQuery

__all__ = ["Batch", "collate", "iterate_minibatches"]


@dataclass(frozen=True)
class Batch:
    """A padded mini-batch of featurized queries.

    Feature arrays have shape ``(batch, max set size, feature width)``; mask
    arrays have shape ``(batch, max set size)`` with ones marking real
    elements.  ``labels`` (normalized cardinalities) and ``cardinalities``
    (true result sizes) are optional and only present for training batches.
    """

    table_features: np.ndarray
    table_mask: np.ndarray
    join_features: np.ndarray
    join_mask: np.ndarray
    predicate_features: np.ndarray
    predicate_mask: np.ndarray
    labels: np.ndarray | None = None
    cardinalities: np.ndarray | None = None

    @property
    def size(self) -> int:
        return self.table_features.shape[0]


def _pad_set(
    feature_sets: Sequence[np.ndarray], feature_width: int, min_size: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Pad a list of (set size, width) arrays into a dense tensor plus mask."""
    batch_size = len(feature_sets)
    max_size = max([fs.shape[0] for fs in feature_sets] + [min_size])
    features = np.zeros((batch_size, max_size, feature_width), dtype=np.float64)
    mask = np.zeros((batch_size, max_size), dtype=np.float64)
    for position, feature_set in enumerate(feature_sets):
        count = feature_set.shape[0]
        if count:
            features[position, :count, :] = feature_set
            mask[position, :count] = 1.0
    return features, mask


def collate(
    featurized: Sequence[FeaturizedQuery],
    labels: np.ndarray | None = None,
    cardinalities: np.ndarray | None = None,
) -> Batch:
    """Assemble featurized queries (and optional labels) into a :class:`Batch`."""
    if not featurized:
        raise ValueError("cannot collate an empty batch")
    table_width = featurized[0].table_features.shape[1]
    join_width = featurized[0].join_features.shape[1]
    predicate_width = featurized[0].predicate_features.shape[1]
    table_features, table_mask = _pad_set([f.table_features for f in featurized], table_width)
    join_features, join_mask = _pad_set([f.join_features for f in featurized], join_width)
    predicate_features, predicate_mask = _pad_set(
        [f.predicate_features for f in featurized], predicate_width
    )
    if labels is not None:
        labels = np.asarray(labels, dtype=np.float64).reshape(-1, 1)
        if labels.shape[0] != len(featurized):
            raise ValueError("labels length does not match batch size")
    if cardinalities is not None:
        cardinalities = np.asarray(cardinalities, dtype=np.float64).reshape(-1, 1)
        if cardinalities.shape[0] != len(featurized):
            raise ValueError("cardinalities length does not match batch size")
    return Batch(
        table_features=table_features,
        table_mask=table_mask,
        join_features=join_features,
        join_mask=join_mask,
        predicate_features=predicate_features,
        predicate_mask=predicate_mask,
        labels=labels,
        cardinalities=cardinalities,
    )


def iterate_minibatches(
    featurized: Sequence[FeaturizedQuery],
    labels: np.ndarray,
    cardinalities: np.ndarray,
    batch_size: int,
    rng: np.random.Generator | None = None,
) -> Iterator[Batch]:
    """Yield shuffled mini-batches for one training epoch."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    count = len(featurized)
    order = np.arange(count)
    if rng is not None:
        rng.shuffle(order)
    labels = np.asarray(labels, dtype=np.float64)
    cardinalities = np.asarray(cardinalities, dtype=np.float64)
    for start in range(0, count, batch_size):
        indices = order[start : start + batch_size]
        yield collate(
            [featurized[i] for i in indices],
            labels=labels[indices],
            cardinalities=cardinalities[indices],
        )
