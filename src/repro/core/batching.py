"""Mini-batch construction: zero-padding variable-sized sets plus masks.

Section 3.2 of the paper: "we pad all samples with zero-valued feature
vectors that act as dummy set elements so that all samples within a
mini-batch have the same number of set elements.  We mask out dummy set
elements in the averaging operation."  :class:`Batch` holds the padded
feature tensors and the corresponding binary masks; :func:`collate` builds a
batch from featurized queries.

:class:`FeaturizedDataset` is the fast path: the padded tensors of a whole
workload are built once (either by :func:`collate` over per-query
featurizations or directly by the vectorized featurizer) and every mini-batch
thereafter is plain index-slicing into those dense arrays — no per-epoch
padding work.  The model's masked pooling ignores dummy elements, so padding
to the dataset-wide maximum set size instead of the per-batch maximum leaves
predictions unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.core.featurization import FeaturizedQuery

__all__ = ["Batch", "FeaturizedDataset", "as_dataset", "collate", "iterate_minibatches"]


@dataclass(frozen=True)
class Batch:
    """A padded mini-batch of featurized queries.

    Feature arrays have shape ``(batch, max set size, feature width)``; mask
    arrays have shape ``(batch, max set size)`` with ones marking real
    elements.  ``labels`` (normalized cardinalities) and ``cardinalities``
    (true result sizes) are optional and only present for training batches.
    """

    table_features: np.ndarray
    table_mask: np.ndarray
    join_features: np.ndarray
    join_mask: np.ndarray
    predicate_features: np.ndarray
    predicate_mask: np.ndarray
    labels: np.ndarray | None = None
    cardinalities: np.ndarray | None = None

    @property
    def size(self) -> int:
        return self.table_features.shape[0]


def _column_vector(values: np.ndarray, expected: int, name: str) -> np.ndarray:
    """Validate per-query scalars and reshape them to a ``(n, 1)`` column."""
    values = np.asarray(values, dtype=np.float64).reshape(-1, 1)
    if values.shape[0] != expected:
        raise ValueError(f"{name} length does not match batch size")
    return values


def _pad_set(
    feature_sets: Sequence[np.ndarray], feature_width: int, min_size: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Pad a list of (set size, width) arrays into a dense tensor plus mask."""
    batch_size = len(feature_sets)
    max_size = max([fs.shape[0] for fs in feature_sets] + [min_size])
    features = np.zeros((batch_size, max_size, feature_width), dtype=np.float64)
    mask = np.zeros((batch_size, max_size), dtype=np.float64)
    for position, feature_set in enumerate(feature_sets):
        count = feature_set.shape[0]
        if count:
            features[position, :count, :] = feature_set
            mask[position, :count] = 1.0
    return features, mask


def collate(
    featurized: Sequence[FeaturizedQuery],
    labels: np.ndarray | None = None,
    cardinalities: np.ndarray | None = None,
) -> Batch:
    """Assemble featurized queries (and optional labels) into a :class:`Batch`."""
    if not featurized:
        raise ValueError("cannot collate an empty batch")
    table_width = featurized[0].table_features.shape[1]
    join_width = featurized[0].join_features.shape[1]
    predicate_width = featurized[0].predicate_features.shape[1]
    table_features, table_mask = _pad_set([f.table_features for f in featurized], table_width)
    join_features, join_mask = _pad_set([f.join_features for f in featurized], join_width)
    predicate_features, predicate_mask = _pad_set(
        [f.predicate_features for f in featurized], predicate_width
    )
    if labels is not None:
        labels = _column_vector(labels, len(featurized), "labels")
    if cardinalities is not None:
        cardinalities = _column_vector(cardinalities, len(featurized), "cardinalities")
    return Batch(
        table_features=table_features,
        table_mask=table_mask,
        join_features=join_features,
        join_mask=join_mask,
        predicate_features=predicate_features,
        predicate_mask=predicate_mask,
        labels=labels,
        cardinalities=cardinalities,
    )


@dataclass(frozen=True)
class FeaturizedDataset:
    """Pre-collated feature tensors of a whole workload.

    Holds the same six padded arrays a :class:`Batch` carries, covering every
    query of the workload, plus optional per-query ``labels`` and
    ``cardinalities`` stored as ``(n, 1)`` columns.  Mini-batches are produced
    by :meth:`batch` — pure array slicing with no padding work.
    """

    table_features: np.ndarray
    table_mask: np.ndarray
    join_features: np.ndarray
    join_mask: np.ndarray
    predicate_features: np.ndarray
    predicate_mask: np.ndarray
    labels: np.ndarray | None = None
    cardinalities: np.ndarray | None = None

    @property
    def size(self) -> int:
        return self.table_features.shape[0]

    def __len__(self) -> int:
        return self.size

    @classmethod
    def from_featurized(
        cls,
        featurized: Sequence[FeaturizedQuery],
        labels: np.ndarray | None = None,
        cardinalities: np.ndarray | None = None,
    ) -> "FeaturizedDataset":
        """Collate per-query featurizations once into a dataset (compat path)."""
        batch = collate(featurized, labels=labels, cardinalities=cardinalities)
        return cls.from_batch(batch)

    @classmethod
    def from_batch(cls, batch: Batch) -> "FeaturizedDataset":
        """Adopt the padded tensors of an already-collated :class:`Batch`."""
        return cls(
            table_features=batch.table_features,
            table_mask=batch.table_mask,
            join_features=batch.join_features,
            join_mask=batch.join_mask,
            predicate_features=batch.predicate_features,
            predicate_mask=batch.predicate_mask,
            labels=batch.labels,
            cardinalities=batch.cardinalities,
        )

    def batch(
        self,
        indices: np.ndarray | slice | None = None,
        labels: np.ndarray | None = None,
        cardinalities: np.ndarray | None = None,
    ) -> Batch:
        """A :class:`Batch` of the selected queries (all of them by default).

        ``labels``/``cardinalities`` override the stored columns; they must
        already be aligned with ``indices`` and are reshaped to ``(n, 1)``
        columns exactly like :func:`collate` does.
        """
        if indices is None:
            indices = slice(None)
        table_features = self.table_features[indices]
        size = table_features.shape[0]
        if labels is not None:
            labels = _column_vector(labels, size, "labels")
        elif self.labels is not None:
            labels = self.labels[indices]
        if cardinalities is not None:
            cardinalities = _column_vector(cardinalities, size, "cardinalities")
        elif self.cardinalities is not None:
            cardinalities = self.cardinalities[indices]
        return Batch(
            table_features=table_features,
            table_mask=self.table_mask[indices],
            join_features=self.join_features[indices],
            join_mask=self.join_mask[indices],
            predicate_features=self.predicate_features[indices],
            predicate_mask=self.predicate_mask[indices],
            labels=labels,
            cardinalities=cardinalities,
        )


def as_dataset(
    features: "FeaturizedDataset | Sequence[FeaturizedQuery]",
) -> FeaturizedDataset:
    """Coerce either input style of the training/prediction APIs to a dataset."""
    if isinstance(features, FeaturizedDataset):
        return features
    return FeaturizedDataset.from_featurized(list(features))


def iterate_minibatches(
    featurized: FeaturizedDataset | Sequence[FeaturizedQuery],
    labels: np.ndarray,
    cardinalities: np.ndarray,
    batch_size: int,
    rng: np.random.Generator | None = None,
) -> Iterator[Batch]:
    """Yield shuffled mini-batches for one training epoch.

    A :class:`FeaturizedDataset` is sliced directly (the fast path); a
    sequence of :class:`FeaturizedQuery` falls back to per-batch collation.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    is_dataset = isinstance(featurized, FeaturizedDataset)
    count = featurized.size if is_dataset else len(featurized)
    order = np.arange(count)
    if rng is not None:
        rng.shuffle(order)
    labels = np.asarray(labels, dtype=np.float64)
    cardinalities = np.asarray(cardinalities, dtype=np.float64)
    for start in range(0, count, batch_size):
        indices = order[start : start + batch_size]
        if is_dataset:
            yield featurized.batch(
                indices,
                labels=labels[indices],
                cardinalities=cardinalities[indices],
            )
        else:
            yield collate(
                [featurized[i] for i in indices],
                labels=labels[indices],
                cardinalities=cardinalities[indices],
            )
