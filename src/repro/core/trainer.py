"""Training and validation loop for MSCN.

The paper trains with Adam on mini-batches of query featurizations,
minimizing the mean q-error of the *unnormalized* predictions (Section 3.2),
and tracks the mean q-error on a held-out validation split after every epoch
(Figure 6).  Mean-squared error on the normalized labels and the
geometric-mean q-error are available as alternative objectives (Section 4.8).

Both training and inference run over the ragged (CSR) layout: the per-element
MLPs touch only real set elements and pooling is a segment reduction, so no
FLOPs are spent on padding.  Training mini-batches are length-bucketed (see
``iterate_ragged_minibatches``); inference goes through the graph-free fused
:class:`~repro.core.inference.InferenceEngine` unless the configuration
disables it (``fused_inference=False`` falls back to the padded autograd
path under ``no_grad()``, kept for benchmarking the legacy behaviour).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.batching import (
    Batch,
    FeaturizedDataset,
    RaggedDataset,
    as_dataset,
    as_ragged_dataset,
    iterate_ragged_minibatches,
)
from repro.core.config import LossKind, MSCNConfig
from repro.core.featurization import FeaturizedQuery
from repro.core.inference import InferenceEngine
from repro.core.model import MSCN
from repro.core.pool import EnginePool
from repro.core.normalization import CardinalityNormalizer
from repro.nn.loss import geometric_q_error_loss, mse_loss, q_error_loss
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad
from repro.utils.rng import spawn_rng

__all__ = ["TrainingResult", "MSCNTrainer"]

#: Any of the feature containers the training / prediction APIs accept.
FeatureInput = "RaggedDataset | FeaturizedDataset | Sequence[FeaturizedQuery]"


@dataclass
class TrainingResult:
    """Outcome of a training run.

    ``validation_q_error_history`` holds the mean validation q-error after
    each epoch (the series plotted in Figure 6); ``train_loss_history`` holds
    the mean training loss per epoch.
    """

    epochs_run: int
    training_seconds: float
    train_loss_history: list[float] = field(default_factory=list)
    validation_q_error_history: list[float] = field(default_factory=list)

    @property
    def final_validation_q_error(self) -> float:
        if not self.validation_q_error_history:
            return float("nan")
        return self.validation_q_error_history[-1]


class MSCNTrainer:
    """Runs the training loop and produces cardinality predictions."""

    def __init__(
        self,
        model: MSCN,
        normalizer: CardinalityNormalizer,
        config: MSCNConfig,
    ):
        self.model = model
        self.normalizer = normalizer
        self.config = config
        self.optimizer = Adam(model.parameters(), learning_rate=config.learning_rate)
        self._shuffle_rng = spawn_rng(config.seed, "minibatch-shuffle")
        self._pool: EnginePool | None = None

    # ------------------------------------------------------------------
    # Loss
    # ------------------------------------------------------------------
    def _loss(self, predictions: Tensor, batch: "Batch | RaggedDataset") -> Tensor:
        """Training loss of a batch of normalized predictions.

        Labels and cardinalities are stored as float64 columns; casting them
        to the prediction dtype here keeps the whole backward pass in the
        configured compute precision (a float64 operand would silently
        promote every gradient of a float32 model).
        """
        dtype = predictions.data.dtype
        if self.config.loss is LossKind.MSE:
            return mse_loss(predictions, Tensor(batch.labels, dtype=dtype))
        predicted_cardinalities = self._denormalize_tensor(predictions)
        true_cardinalities = Tensor(batch.cardinalities, dtype=dtype)
        if self.config.loss is LossKind.GEOMETRIC_Q_ERROR:
            return geometric_q_error_loss(predicted_cardinalities, true_cardinalities)
        return q_error_loss(predicted_cardinalities, true_cardinalities)

    def _denormalize_tensor(self, predictions: Tensor) -> Tensor:
        """Invert the label normalization inside the autograd graph."""
        return (predictions * self.normalizer.scale + self.normalizer.min_log).exp()

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train(
        self,
        train_features: FeatureInput,
        train_cardinalities: np.ndarray,
        validation_features: "FeatureInput | None" = None,
        validation_cardinalities: np.ndarray | None = None,
        epochs: int | None = None,
    ) -> TrainingResult:
        """Train for ``epochs`` passes over the training set.

        Both feature arguments accept a :class:`RaggedDataset`, a padded
        :class:`~repro.core.batching.FeaturizedDataset` or a sequence of
        per-query featurizations; everything is converted to the ragged
        layout once up front, so neither padding nor per-epoch collation
        happens inside the epoch loop.

        Validation data is optional; when present, the mean validation q-error
        is recorded after every epoch.
        """
        epochs = epochs if epochs is not None else self.config.epochs
        train_set = as_ragged_dataset(train_features)
        validation_set = (
            as_ragged_dataset(validation_features)
            if validation_features is not None
            else None
        )
        train_cardinalities = np.asarray(train_cardinalities, dtype=np.float64)
        train_labels = self.normalizer.normalize(train_cardinalities)
        result = TrainingResult(epochs_run=0, training_seconds=0.0)
        start_time = time.perf_counter()
        self.model.train()
        for _ in range(epochs):
            epoch_losses: list[float] = []
            shuffle_rng = self._shuffle_rng if self.config.shuffle else None
            for batch in iterate_ragged_minibatches(
                train_set,
                train_labels,
                train_cardinalities,
                self.config.batch_size,
                rng=shuffle_rng,
                bucket_by_length=self.config.bucket_by_length,
            ):
                self.optimizer.zero_grad()
                predictions = self.model.forward_ragged(batch)
                loss = self._loss(predictions, batch)
                loss.backward()
                self.optimizer.step()
                epoch_losses.append(loss.item())
            result.train_loss_history.append(float(np.mean(epoch_losses)))
            result.epochs_run += 1
            if validation_set is not None and validation_cardinalities is not None:
                result.validation_q_error_history.append(
                    self.mean_q_error(validation_set, validation_cardinalities)
                )
                # mean_q_error() predicts in eval() mode; later epochs must
                # train with training-mode behaviour (e.g. active dropout).
                self.model.train()
        result.training_seconds = time.perf_counter() - start_time
        self.model.eval()
        return result

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def pool(self) -> EnginePool:
        """The cached engine replica pool (weights refreshed by callers).

        Sized and precision-configured by the estimator configuration; with
        ``engine_replicas=1`` (the default) it behaves exactly like the
        plain single-engine path — chunks run inline on one engine and no
        worker threads are created.
        """
        if self._pool is None:
            self._pool = EnginePool(
                self.model,
                num_replicas=self.config.engine_replicas,
                dtype=self.config.np_dtype,
                precision=self.config.inference_precision,
                scratch_rows_cap=self.config.scratch_rows_cap,
            )
        return self._pool

    def engine(self) -> InferenceEngine:
        """The pool's primary fused inference engine (single-engine view)."""
        return self.pool().primary

    def predict_normalized(
        self,
        features: FeatureInput,
        batch_size: int | None = None,
        fused: bool | None = None,
    ) -> np.ndarray:
        """Raw sigmoid outputs in [0, 1], computed in ``batch_size`` chunks.

        ``fused`` overrides ``config.fused_inference``: ``True`` runs the
        graph-free engine over the ragged layout, ``False`` the legacy padded
        autograd path under ``no_grad()``.

        Predictions are always returned as float64, whatever the engine's
        compute dtype: downstream consumers (denormalization, q-error metrics,
        result caches) hold float64 cardinalities, and a float32 array leaking
        out of the fused path would silently change their precision.
        """
        use_fused = self.config.fused_inference if fused is None else fused
        if batch_size is None:
            batch_size = (
                self.config.inference_chunk_size
                if self.config.inference_chunk_size is not None
                else self.config.batch_size
            )
        if use_fused:
            normalized = self._predict_normalized_fused(features, batch_size)
        else:
            normalized = self._predict_normalized_padded(features, batch_size)
        return np.asarray(normalized, dtype=np.float64)

    def _predict_normalized_fused(self, features: FeatureInput, batch_size: int) -> np.ndarray:
        if not isinstance(features, RaggedDataset) and not features:
            return np.empty(0, dtype=np.float64)
        dataset = as_ragged_dataset(features)
        if dataset.size == 0:
            return np.empty(0, dtype=np.float64)
        self.model.eval()
        pool = self.pool()
        pool.refresh()
        return pool.run_many(dataset, chunk_size=batch_size)

    def _predict_normalized_padded(self, features: FeatureInput, batch_size: int) -> np.ndarray:
        """The legacy padded inference path (benchmark baseline)."""
        if isinstance(features, RaggedDataset):
            features = features.to_padded() if features.size else []
        dataset = self._prediction_dataset(features)
        if dataset is None:
            return np.empty(0, dtype=np.float64)
        outputs: list[np.ndarray] = []
        self.model.eval()
        with no_grad():
            for start in range(0, dataset.size, batch_size):
                batch = dataset.batch(slice(start, start + batch_size))
                predictions = self.model.forward_batch(batch)
                outputs.append(predictions.numpy().reshape(-1))
        return np.concatenate(outputs)

    def predict(
        self,
        features: FeatureInput,
        batch_size: int | None = None,
        fused: bool | None = None,
    ) -> np.ndarray:
        """Predict cardinalities for featurized queries (denormalized, >= 1)."""
        normalized = self.predict_normalized(features, batch_size=batch_size, fused=fused)
        if normalized.size == 0:
            return np.empty(0, dtype=np.float64)
        return self.normalizer.denormalize(normalized)

    @staticmethod
    def _prediction_dataset(
        features: "FeaturizedDataset | Sequence[FeaturizedQuery]",
    ) -> FeaturizedDataset | None:
        if isinstance(features, FeaturizedDataset):
            return features if features.size else None
        if not features:
            return None
        return as_dataset(features)

    def mean_q_error(
        self,
        features: FeatureInput,
        cardinalities: np.ndarray,
    ) -> float:
        """Mean q-error of the current model on a labelled feature set."""
        from repro.evaluation.metrics import q_errors

        predictions = self.predict(features)
        cardinalities = np.asarray(cardinalities, dtype=np.float64)
        return float(q_errors(predictions, cardinalities).mean())
