"""The paper's contribution: the multi-set convolutional network (MSCN).

The sub-modules follow the pipeline of Section 3:

* :mod:`repro.core.encoding` — one-hot vocabularies for tables, joins,
  columns and operators derived from the schema (Section 3.1),
* :mod:`repro.core.normalization` — min/max normalization of predicate
  literals and log + min/max normalization of target cardinalities,
* :mod:`repro.core.featurization` — query → (table set, join set, predicate
  set) feature vectors, optionally enriched with materialized-sample counts
  or bitmaps (Section 3.4),
* :mod:`repro.core.batching` — zero-padding and masking of variable-sized
  sets into fixed-shape mini-batches (Section 3.2),
* :mod:`repro.core.model` — the MSCN architecture,
* :mod:`repro.core.trainer` — training / validation loop with the paper's
  loss functions,
* :mod:`repro.core.estimator` — the public :class:`MSCNEstimator` façade.
"""

from repro.core.arena import ScratchArena
from repro.core.batching import Batch, FeaturizedDataset
from repro.core.config import FeaturizationVariant, MSCNConfig
from repro.core.ensemble import EnsembleEstimate, EnsembleMSCNEstimator
from repro.core.estimator import MSCNEstimator
from repro.core.featurization import FeatureBuffers, FeaturizedQuery, QueryFeaturizer
from repro.core.inference import InferenceEngine, WeightSnapshot
from repro.core.model import MSCN
from repro.core.pool import EnginePool
from repro.core.trainer import MSCNTrainer, TrainingResult

__all__ = [
    "MSCNConfig",
    "FeaturizationVariant",
    "MSCNEstimator",
    "EnsembleMSCNEstimator",
    "EnsembleEstimate",
    "QueryFeaturizer",
    "FeaturizedQuery",
    "FeatureBuffers",
    "ScratchArena",
    "Batch",
    "FeaturizedDataset",
    "MSCN",
    "MSCNTrainer",
    "TrainingResult",
    "InferenceEngine",
    "WeightSnapshot",
    "EnginePool",
]
