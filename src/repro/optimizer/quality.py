"""Plan-quality metrics: what an estimator's errors cost the optimizer.

Per-query q-error says how wrong an estimate is; it does not say whether
the optimizer would have picked a different (worse) join order because of
it.  This module closes that loop, following the paper's motivation:

1. ask the estimator for the cardinality of **every connected sub-plan**
   of a query (one batched ``estimate_subplans`` call),
2. run the DP enumerator under those estimates → the plan the optimizer
   *would choose*,
3. re-cost that chosen plan under **true** sub-plan cardinalities — the
   cost actually paid at execution time,
4. compare against the cost of the true-cardinality-optimal plan.

The headline metric is the **cost ratio** ``true cost of chosen plan /
true cost of optimal plan`` (≥ 1; 1 means the estimator's errors were
harmless to join ordering).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.db.query import Query
from repro.estimators.base import subplan_map
from repro.optimizer.cost import plan_true_cost
from repro.optimizer.enumeration import enumerate_optimal_plan
from repro.optimizer.plan import Plan

__all__ = [
    "subplan_estimates",
    "PlanQualityResult",
    "PlanQualitySummary",
    "PlanQualityReport",
    "plan_quality_for_query",
    "evaluate_plan_quality",
    "summarize_plan_quality",
]


def subplan_estimates(estimator, query: Query) -> dict[frozenset[str], float]:
    """Cardinalities of every connected sub-plan of ``query``.

    Uses the estimator's own ``estimate_subplans`` batch path when it has
    one (MSCN's fused pass, the serving cache, the memoized oracle) and
    falls back to one vectorized ``estimate_many`` call otherwise — never a
    per-sub-query Python loop.
    """
    batch = getattr(estimator, "estimate_subplans", None)
    if batch is not None:
        return batch(query)
    subqueries = query.connected_subqueries()
    return subplan_map(subqueries, estimator.estimate_many(subqueries))


@dataclass(frozen=True)
class PlanQualityResult:
    """Plan-quality outcome for one query and one estimator."""

    query: Query
    chosen_plan: Plan
    optimal_plan: Plan
    chosen_plan_true_cost: float
    optimal_true_cost: float

    @property
    def cost_ratio(self) -> float:
        """True cost of the chosen plan over the optimal plan's (≥ 1)."""
        if self.optimal_true_cost > 0.0:
            return self.chosen_plan_true_cost / self.optimal_true_cost
        return 1.0 if self.chosen_plan_true_cost == 0.0 else float("inf")

    @property
    def picked_optimal(self) -> bool:
        """Whether the estimator-driven plan costs no more than the optimum."""
        return self.chosen_plan_true_cost <= self.optimal_true_cost


@dataclass(frozen=True)
class PlanQualitySummary:
    """Distribution of cost ratios over a workload (a plan-quality table row)."""

    count: int
    median: float
    percentile_95: float
    maximum: float
    mean: float
    fraction_optimal: float
    total_chosen_cost: float
    total_optimal_cost: float

    @property
    def total_cost_ratio(self) -> float:
        """Workload-level slowdown: summed chosen cost over summed optimal cost."""
        if self.total_optimal_cost > 0.0:
            return self.total_chosen_cost / self.total_optimal_cost
        return 1.0


@dataclass(frozen=True)
class PlanQualityReport:
    """Per-query plan-quality results for one estimator over one workload."""

    estimator_name: str
    results: tuple[PlanQualityResult, ...]

    def cost_ratios(self) -> np.ndarray:
        return np.array([result.cost_ratio for result in self.results], dtype=np.float64)

    def summary(self) -> PlanQualitySummary:
        return summarize_plan_quality(self.results)


def plan_quality_for_query(
    query: Query,
    estimated_cardinalities: Mapping[frozenset[str], float],
    true_cardinalities: Mapping[frozenset[str], float],
) -> PlanQualityResult:
    """Plan quality of one query given estimated and true sub-plan sizes."""
    chosen = enumerate_optimal_plan(query, estimated_cardinalities)
    optimal = enumerate_optimal_plan(query, true_cardinalities)
    return PlanQualityResult(
        query=query,
        chosen_plan=chosen,
        optimal_plan=optimal,
        chosen_plan_true_cost=plan_true_cost(chosen.tree, true_cardinalities),
        optimal_true_cost=optimal.cost,
    )


def evaluate_plan_quality(
    estimator,
    oracle,
    queries: Sequence[Query],
    *,
    min_joins: int = 2,
) -> PlanQualityReport:
    """Plan quality of an estimator over a workload.

    ``oracle`` supplies true sub-plan cardinalities — typically a (memoized)
    :class:`~repro.estimators.true.TrueCardinalityEstimator`, so repeated
    evaluations of several estimators over one workload execute each shared
    sub-plan once.  Queries with fewer than ``min_joins`` joins are skipped:
    with zero or one join every cross-product-free join order has the same
    C_out cost, so they carry no plan-quality signal.
    """
    if min_joins < 0:
        raise ValueError("min_joins must be non-negative")
    results = []
    for query in queries:
        if query.num_joins < min_joins or not query.is_connected():
            continue
        estimated = subplan_estimates(estimator, query)
        truth = subplan_estimates(oracle, query)
        results.append(plan_quality_for_query(query, estimated, truth))
    return PlanQualityReport(
        estimator_name=getattr(estimator, "name", type(estimator).__name__),
        results=tuple(results),
    )


def summarize_plan_quality(results: Sequence[PlanQualityResult]) -> PlanQualitySummary:
    """Distribution summary of plan-quality results."""
    if not results:
        raise ValueError(
            "cannot summarize plan quality without results; the workload had "
            "no queries with enough joins to make join order matter"
        )
    ratios = np.array([result.cost_ratio for result in results], dtype=np.float64)
    return PlanQualitySummary(
        count=int(ratios.size),
        median=float(np.percentile(ratios, 50)),
        percentile_95=float(np.percentile(ratios, 95)),
        maximum=float(ratios.max()),
        mean=float(ratios.mean()),
        fraction_optimal=float(
            np.mean([result.picked_optimal for result in results])
        ),
        total_chosen_cost=float(sum(result.chosen_plan_true_cost for result in results)),
        total_optimal_cost=float(sum(result.optimal_true_cost for result in results)),
    )
