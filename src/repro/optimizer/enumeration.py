"""Dynamic-programming join enumeration (DPsize over connected subgraphs).

Given one query's join graph and a cardinality function covering its
connected sub-plans, :func:`enumerate_optimal_plan` builds the cheapest
binary join tree under the C_out cost model by the classic DPsize
recurrence: the best plan for a connected table set ``S`` is the cheapest
combination of best plans for a partition ``S = S₁ ∪ S₂`` where both parts
are connected and a join edge crosses them (no cross products).

Sub-plan identities are bitmasks over the query's table order, so the DP
table and the submask enumeration are integer arithmetic; queries in this
repo join a handful of tables, so exhaustive connected-subgraph DP is
exact and effectively free next to one model forward pass.
"""

from __future__ import annotations

from typing import Mapping

from repro.db.query import Query
from repro.optimizer.cost import cout_cost
from repro.optimizer.plan import JoinTree, Plan

__all__ = ["enumerate_optimal_plan", "all_join_trees"]


def _table_masks(query: Query) -> tuple[dict[str, int], list[int]]:
    """Per-table bit positions and per-table adjacency masks."""
    order = {table: position for position, table in enumerate(query.tables)}
    adjacency = [0] * len(query.tables)
    for join in query.joins:
        left = order[join.left_table]
        right = order[join.right_table]
        adjacency[left] |= 1 << right
        adjacency[right] |= 1 << left
    return order, adjacency


def _mask_tables(query: Query, mask: int) -> frozenset[str]:
    return frozenset(
        table for position, table in enumerate(query.tables) if mask >> position & 1
    )


def _connected_subset_masks(query: Query, order: dict[str, int]) -> list[int]:
    """Bitmasks of the multi-table connected subsets, smallest first.

    Reuses the query's memoized subset enumeration, which is already sorted
    by size — the DPsize invariant that every partition's parts are solved
    before their union is visited.
    """
    masks = []
    for subset in query.connected_table_subsets():
        if len(subset) >= 2:
            mask = 0
            for table in subset:
                mask |= 1 << order[table]
            masks.append(mask)
    return masks


def _has_cross_edge(submask: int, complement: int, adjacency: list[int]) -> bool:
    """Whether a join edge connects the two halves of a partition."""
    reach = 0
    probe = submask
    while probe:
        position = probe.bit_length() - 1
        probe &= ~(1 << position)
        reach |= adjacency[position]
    return bool(reach & complement)


def enumerate_optimal_plan(
    query: Query, cardinalities: Mapping[frozenset[str], float]
) -> Plan:
    """The C_out-optimal join tree of ``query`` under ``cardinalities``.

    ``cardinalities`` maps connected sub-plan table sets to (estimated or
    true) result sizes — the shape ``estimate_subplans`` returns.  Ties are
    broken deterministically towards the plan found first in submask order,
    so identical inputs always yield the identical tree.

    Raises ``ValueError`` for disconnected queries (an optimizer that
    avoids cross products cannot plan them) and ``KeyError`` when a needed
    sub-plan cardinality is missing.
    """
    if not query.is_connected():
        raise ValueError(
            "join enumeration requires a connected join graph; "
            f"query {query.tables} contains a cross product"
        )
    if len(query.tables) == 1:
        tree = JoinTree.leaf(query.tables[0])
        return Plan(tree=tree, cost=0.0, cardinalities=dict(cardinalities))

    order, adjacency = _table_masks(query)
    best: dict[int, tuple[float, JoinTree]] = {}
    for position, table in enumerate(query.tables):
        best[1 << position] = (0.0, JoinTree.leaf(table))

    for mask in _connected_subset_masks(query, order):
        tables = _mask_tables(query, mask)
        try:
            output_cardinality = float(cardinalities[tables])
        except KeyError:
            raise KeyError(
                f"no cardinality for sub-plan {tuple(sorted(tables))}; "
                "estimate_subplans must cover every connected sub-plan"
            ) from None
        champion: tuple[float, JoinTree] | None = None
        # Enumerate unordered partitions once by anchoring the lowest bit in
        # the left part; commutative mirrors would only duplicate work.
        lowest = mask & -mask
        submask = (mask - 1) & mask
        while submask:
            if submask & lowest:
                complement = mask ^ submask
                left_solved = best.get(submask)
                right_solved = best.get(complement)
                if (
                    left_solved is not None
                    and right_solved is not None
                    and _has_cross_edge(submask, complement, adjacency)
                ):
                    cost = left_solved[0] + right_solved[0] + output_cardinality
                    if champion is None or cost < champion[0]:
                        champion = (cost, JoinTree.join(left_solved[1], right_solved[1]))
            submask = (submask - 1) & mask
        if champion is None:  # pragma: no cover - connected subsets always split
            raise RuntimeError(f"no connected partition found for {sorted(tables)}")
        best[mask] = champion

    full_mask = (1 << len(query.tables)) - 1
    cost, tree = best[full_mask]
    return Plan(tree=tree, cost=cost, cardinalities=dict(cardinalities))


def all_join_trees(query: Query) -> list[JoinTree]:
    """Every cross-product-free join tree of a connected query.

    Exhaustive (Catalan-sized) — used by tests and tiny-workload analyses to
    certify the DP against brute force, and by examples to show how much of
    the search space a bad estimate misprices.  Commutative mirrors are
    deduplicated via :meth:`JoinTree.canonical`.
    """
    if not query.is_connected():
        raise ValueError("join enumeration requires a connected join graph")
    order, adjacency = _table_masks(query)

    trees_by_mask: dict[int, list[JoinTree]] = {}
    for position, table in enumerate(query.tables):
        trees_by_mask[1 << position] = [JoinTree.leaf(table)]

    for mask in _connected_subset_masks(query, order):
        found: dict[tuple, JoinTree] = {}
        lowest = mask & -mask
        submask = (mask - 1) & mask
        while submask:
            if submask & lowest:
                complement = mask ^ submask
                left_trees = trees_by_mask.get(submask)
                right_trees = trees_by_mask.get(complement)
                if (
                    left_trees
                    and right_trees
                    and _has_cross_edge(submask, complement, adjacency)
                ):
                    for left in left_trees:
                        for right in right_trees:
                            tree = JoinTree.join(left, right)
                            found.setdefault(tree.canonical(), tree)
            submask = (submask - 1) & mask
        trees_by_mask[mask] = list(found.values())

    full_mask = (1 << len(query.tables)) - 1
    return trees_by_mask[full_mask]
