"""Join-tree and plan representations.

The paper motivates learned cardinality estimation by its downstream
consumer: the query optimizer's join-order search.  A *plan* here is a
binary join tree over the base tables of one query — the object the
dynamic-programming enumerator (:mod:`repro.optimizer.enumeration`)
produces and the cost model (:mod:`repro.optimizer.cost`) prices.

Physical operator choice is out of scope (the paper's plan-quality
argument is about join *order*), so a tree node carries only its table
set; commutative mirrors ``A ⋈ B`` / ``B ⋈ A`` are considered the same
plan by :meth:`JoinTree.canonical`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

__all__ = ["JoinTree", "Plan"]


@dataclass(frozen=True)
class JoinTree:
    """A node of a binary join tree: either a base-table leaf or a join.

    ``tables`` is the set of base tables below the node — the sub-plan
    identity every cardinality function and cost model keys on.
    """

    tables: frozenset[str]
    left: "JoinTree | None" = None
    right: "JoinTree | None" = None

    def __post_init__(self) -> None:
        if (self.left is None) != (self.right is None):
            raise ValueError("a join node needs both children, a leaf neither")
        if self.left is not None and self.right is not None:
            if self.left.tables & self.right.tables:
                raise ValueError("join children must cover disjoint table sets")
            if self.left.tables | self.right.tables != self.tables:
                raise ValueError("a join node's tables must be the union of its children's")
        elif len(self.tables) != 1:
            raise ValueError("a leaf covers exactly one table")

    # -- construction ----------------------------------------------------
    @classmethod
    def leaf(cls, table: str) -> "JoinTree":
        return cls(tables=frozenset({table}))

    @classmethod
    def join(cls, left: "JoinTree", right: "JoinTree") -> "JoinTree":
        return cls(tables=left.tables | right.tables, left=left, right=right)

    # -- structure -------------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        return self.left is None

    @property
    def table(self) -> str:
        """The leaf's table name (raises on join nodes)."""
        if not self.is_leaf:
            raise ValueError("only leaves name a single table")
        return next(iter(self.tables))

    @property
    def num_joins(self) -> int:
        return len(self.tables) - 1

    def iter_nodes(self) -> Iterator["JoinTree"]:
        """All nodes, children before parents (post-order)."""
        if not self.is_leaf:
            yield from self.left.iter_nodes()
            yield from self.right.iter_nodes()
        yield self

    def iter_joins(self) -> Iterator["JoinTree"]:
        """The join (inner) nodes only, children before parents."""
        for node in self.iter_nodes():
            if not node.is_leaf:
                yield node

    def leaf_tables(self) -> tuple[str, ...]:
        """Base tables in left-to-right leaf order."""
        return tuple(node.table for node in self.iter_nodes() if node.is_leaf)

    def canonical(self) -> tuple:
        """Order-independent identity (commutative mirrors collapse)."""
        if self.is_leaf:
            return (self.table,)
        return tuple(sorted((self.left.canonical(), self.right.canonical()), key=repr))

    def __str__(self) -> str:
        if self.is_leaf:
            return self.table
        return f"({self.left} ⋈ {self.right})"


@dataclass(frozen=True)
class Plan:
    """A costed join tree: the output of one enumeration run.

    ``cost`` is the plan's total cost under the cardinality function the
    enumerator was driven with; ``cardinalities`` records that function
    restricted to the plan's sub-plans, so a plan can be re-costed (e.g.
    under *true* cardinalities) without re-estimating anything.
    """

    tree: JoinTree
    cost: float
    cardinalities: Mapping[frozenset[str], float]

    @property
    def tables(self) -> frozenset[str]:
        return self.tree.tables

    @property
    def num_joins(self) -> int:
        return self.tree.num_joins

    def describe(self) -> str:
        return f"{self.tree} @ cost {self.cost:,.1f}"
