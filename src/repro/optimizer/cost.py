"""The C_out cost model.

``C_out`` (Cluet & Moerkotte) charges every join operator the cardinality
of its output: ``cost(plan) = Σ |T ⋈ S|`` over the plan's join nodes.
Base-table scans contribute nothing — their cost is identical across all
join orders of one query, so they cannot change the argmin, and leaving
them out makes the cost-ratio metric a pure join-ordering signal.

The model is deliberately engine-agnostic: it needs only a cardinality
function ``tables -> |result|``, which is exactly what a cardinality
estimator (learned or classical) provides for every connected sub-plan.
The quality of an estimator *as seen by an optimizer* is then: feed its
cardinalities to the enumerator, take the winning plan and re-cost that
plan under true cardinalities (:func:`plan_true_cost`).
"""

from __future__ import annotations

from typing import Mapping

from repro.optimizer.plan import JoinTree

__all__ = ["cout_cost", "plan_true_cost"]


def cout_cost(tree: JoinTree, cardinalities: Mapping[frozenset[str], float]) -> float:
    """Total C_out cost of a join tree under a cardinality function.

    ``cardinalities`` maps sub-plan table sets (as produced by
    ``Query.connected_table_subsets`` / ``estimate_subplans``) to result
    sizes; only the tree's join-node table sets are consulted.
    """
    cost = 0.0
    for node in tree.iter_joins():
        try:
            cost += float(cardinalities[node.tables])
        except KeyError:
            raise KeyError(
                f"no cardinality for sub-plan {tuple(sorted(node.tables))}; "
                "the cardinality function must cover every connected sub-plan"
            ) from None
    return cost


def plan_true_cost(tree: JoinTree, true_cardinalities: Mapping[frozenset[str], float]) -> float:
    """Cost the execution engine would pay for ``tree`` (C_out under truth).

    This is :func:`cout_cost` under the *true* cardinality function — the
    quantity plan-quality metrics compare against the true-cardinality-optimal
    plan's cost.
    """
    return cout_cost(tree, true_cardinalities)
