"""Join-order optimization and plan-quality evaluation.

The consumer the paper builds MSCN for is a query optimizer: it does not
ask for one cardinality, it asks for the cardinality of **every connected
sub-plan** of a query and picks the join order those numbers make look
cheapest.  This package provides that consumer so estimators can be judged
by the plans they induce, not only by q-error:

``repro.optimizer.plan``
    :class:`JoinTree`/:class:`Plan` — binary join trees over base tables.
``repro.optimizer.cost``
    The C_out cost model (every join charges its output cardinality).
``repro.optimizer.enumeration``
    Exact DPsize dynamic programming over connected subgraphs (plus an
    exhaustive enumerator for certification).
``repro.optimizer.quality``
    Plan-quality metrics: cost of the plan chosen under estimated
    cardinalities, executed under true cardinalities, vs. the
    true-cardinality-optimal plan.
"""

from repro.optimizer.cost import cout_cost, plan_true_cost
from repro.optimizer.enumeration import all_join_trees, enumerate_optimal_plan
from repro.optimizer.plan import JoinTree, Plan
from repro.optimizer.quality import (
    PlanQualityReport,
    PlanQualityResult,
    PlanQualitySummary,
    evaluate_plan_quality,
    plan_quality_for_query,
    subplan_estimates,
    summarize_plan_quality,
)

__all__ = [
    "JoinTree",
    "Plan",
    "cout_cost",
    "plan_true_cost",
    "enumerate_optimal_plan",
    "all_join_trees",
    "subplan_estimates",
    "PlanQualityResult",
    "PlanQualitySummary",
    "PlanQualityReport",
    "plan_quality_for_query",
    "evaluate_plan_quality",
    "summarize_plan_quality",
]
