"""Weight initialization schemes for :mod:`repro.nn` layers."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "kaiming_uniform", "zeros"]


def xavier_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialization, suited to sigmoid outputs."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def kaiming_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """He/Kaiming uniform initialization, suited to ReLU hidden layers."""
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros initialization (used for biases)."""
    return np.zeros(shape, dtype=np.float64)
