"""Gradient-descent optimizers.

The paper trains MSCN with Adam (Kingma & Ba); SGD with momentum is provided
as a simpler alternative and for tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base class holding the parameter list and the ``zero_grad`` helper."""

    def __init__(self, parameters: Sequence[Tensor]) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        for parameter in self.parameters:
            if not parameter.requires_grad:
                raise ValueError("all optimized parameters must require gradients")

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Sequence[Tensor],
        learning_rate: float = 0.01,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            velocity *= self.momentum
            velocity -= self.learning_rate * parameter.grad
            # In-place update: the parameter buffer identity is stable, so
            # engine/optimizer references never go stale and no per-step
            # allocation happens.
            np.add(parameter.data, velocity, out=parameter.data)


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2014) — the paper's training optimizer."""

    def __init__(
        self,
        parameters: Sequence[Tensor],
        learning_rate: float = 0.001,
        betas: tuple[float, float] = (0.9, 0.999),
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(parameters)
        if learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._step_count = 0
        self._first_moment = [np.zeros_like(p.data) for p in self.parameters]
        self._second_moment = [np.zeros_like(p.data) for p in self.parameters]
        # Per-parameter scratch for the update term, so a step allocates
        # nothing and the parameter buffers are updated strictly in place.
        self._scratch = [np.empty_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias_correction1 = 1.0 - self.beta1**self._step_count
        bias_correction2 = 1.0 - self.beta2**self._step_count
        for parameter, first, second, scratch in zip(
            self.parameters, self._first_moment, self._second_moment, self._scratch
        ):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            first *= self.beta1
            first += (1.0 - self.beta1) * grad
            second *= self.beta2
            second += (1.0 - self.beta2) * grad * grad
            # update = lr * (first / bc1) / (sqrt(second / bc2) + eps),
            # computed entirely in the scratch buffer.
            np.divide(second, bias_correction2, out=scratch)
            np.sqrt(scratch, out=scratch)
            scratch += self.epsilon
            np.divide(first, scratch, out=scratch)
            scratch *= self.learning_rate / bias_correction1
            np.subtract(parameter.data, scratch, out=parameter.data)
