"""Loss functions for cardinality estimation (paper Sections 3.2 and 4.8).

The paper trains MSCN to minimize the *mean q-error*: the factor between the
estimated and the true cardinality, ``max(est / true, true / est)``.  Two
alternatives from Section 4.8 are also provided: mean squared error on the
normalized labels and the geometric-mean q-error (optimized as the mean of
``log`` q-errors, which is monotonically equivalent and numerically better
behaved).

All losses operate on :class:`~repro.nn.tensor.Tensor` values so they can be
back-propagated through the model.
"""

from __future__ import annotations

from repro.nn.tensor import Tensor, maximum

__all__ = ["q_error_loss", "mse_loss", "geometric_q_error_loss"]

# Cardinalities are at least one tuple when used inside a q-error; predictions
# are clamped away from zero to keep the ratio finite.
_MIN_CARDINALITY = 1.0


def q_error_loss(predicted_cardinalities: Tensor, true_cardinalities: Tensor) -> Tensor:
    """Mean q-error between predicted and true cardinalities.

    Both arguments hold strictly positive cardinalities (not normalized
    labels).  The q-error of a perfect estimate is 1, so the minimum of this
    loss is 1.
    """
    predicted = predicted_cardinalities.clip(_MIN_CARDINALITY, None)
    true = true_cardinalities.clip(_MIN_CARDINALITY, None)
    q_errors = maximum(predicted / true, true / predicted)
    return q_errors.mean()


def geometric_q_error_loss(predicted_cardinalities: Tensor, true_cardinalities: Tensor) -> Tensor:
    """Mean logarithmic q-error.

    Minimizing the mean of ``log(q)`` is equivalent to minimizing the
    geometric mean of the q-errors; the paper reports this variant puts less
    emphasis on heavy outliers (Section 4.8).
    """
    predicted = predicted_cardinalities.clip(_MIN_CARDINALITY, None)
    true = true_cardinalities.clip(_MIN_CARDINALITY, None)
    q_errors = maximum(predicted / true, true / predicted)
    return q_errors.log().mean()


def mse_loss(predictions: Tensor, targets: Tensor) -> Tensor:
    """Mean squared error; used on *normalized* labels in Section 4.8."""
    difference = predictions - targets
    return (difference * difference).mean()
