"""Reverse-mode automatic differentiation over numpy arrays.

The engine is intentionally small: it supports exactly the operations the
MSCN model and its loss functions need (element-wise arithmetic with
broadcasting, matrix multiplication, reductions, reshaping, concatenation,
ReLU / sigmoid / exp / log, and element-wise maximum).  Gradients flow through
a dynamically-built computation graph; calling :meth:`Tensor.backward` on a
scalar result performs a topological traversal and accumulates gradients into
every tensor created with ``requires_grad=True``.

Every operation's backward pass is validated against central finite
differences in ``tests/nn/test_tensor.py``.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "concatenate", "maximum", "no_grad", "is_grad_enabled"]


_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction.

    Used during inference so that forward passes neither allocate parent
    references nor keep intermediate buffers alive.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradient information."""
    return _GRAD_ENABLED


_FLOAT_DTYPES = (np.float32, np.float64)


def _as_array(value, dtype: np.dtype | None = None) -> np.ndarray:
    """Coerce ``value`` to a floating numpy array.

    Arrays that are already single or double precision keep their dtype (the
    compute precision is configured upstream, see ``MSCNConfig.dtype``);
    everything else is converted to ``dtype`` (default ``float64``).
    """
    if dtype is not None:
        return np.asarray(value, dtype=dtype)
    if isinstance(value, np.ndarray) and value.dtype in _FLOAT_DTYPES:
        return value
    if isinstance(value, np.floating) and value.dtype in _FLOAT_DTYPES:
        # 0-d results of reductions (e.g. ``array.sum()``) arrive as numpy
        # scalars; keep their precision instead of promoting to float64.
        return np.asarray(value)
    return np.asarray(value, dtype=np.float64)


def _coerce_operand(value, like: np.ndarray) -> "Tensor":
    """Wrap a non-tensor operand, matching ``like``'s dtype for scalars.

    Matching the dtype keeps float32 graphs in float32: a bare python float
    would otherwise be converted to a float64 array and silently promote
    every downstream operation.
    """
    if isinstance(value, Tensor):
        return value
    if isinstance(value, np.ndarray) and value.dtype in _FLOAT_DTYPES:
        return Tensor(value)
    return Tensor(np.asarray(value, dtype=like.dtype))


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` back down to ``shape`` to undo numpy broadcasting.

    Broadcasting either prepends new axes or stretches axes of size one; the
    corresponding gradient contribution is the sum over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were stretched from size one.
    stretched = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if stretched:
        grad = grad.sum(axis=stretched, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor that records the operations applied to it.

    Parameters
    ----------
    data:
        Anything convertible to a floating numpy array.  Float32 and float64
        arrays keep their dtype (the pipeline's compute precision is
        configured upstream); everything else converts to float64.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    dtype:
        Optional explicit dtype override for the stored array.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        name: str | None = None,
        dtype: np.dtype | None = None,
    ):
        self.data = _as_array(data, dtype=dtype)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def _from_op(
        cls,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = cls(data, requires_grad=False)
        out.requires_grad = requires
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{grad_flag})"

    # ------------------------------------------------------------------
    # Gradient plumbing
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        self.grad = None

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Back-propagate from this tensor.

        ``grad`` defaults to ones, which is the conventional seed for a scalar
        loss.  Raises ``ValueError`` when called on a non-scalar tensor without
        an explicit seed gradient.
        """
        if not self.requires_grad:
            raise ValueError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without a gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"seed gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
                )

        ordered: list[Tensor] = []
        visited: set[int] = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, iter(node._parents))]
            visited.add(id(node))
            while stack:
                current, parents = stack[-1]
                advanced = False
                for parent in parents:
                    if id(parent) not in visited and parent.requires_grad:
                        visited.add(id(parent))
                        stack.append((parent, iter(parent._parents)))
                        advanced = True
                        break
                if not advanced:
                    ordered.append(current)
                    stack.pop()

        visit(self)

        self._accumulate(grad)
        for node in reversed(ordered):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Element-wise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = _coerce_operand(other, self.data)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.data.shape))

        return Tensor._from_op(out_data, (self, other), backward)

    def __radd__(self, other) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._from_op(out_data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = _coerce_operand(other, self.data)
        return self.__add__(-other)

    def __rsub__(self, other) -> "Tensor":
        return _coerce_operand(other, self.data).__add__(-self)

    def __mul__(self, other) -> "Tensor":
        other = _coerce_operand(other, self.data)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.data.shape))

        return Tensor._from_op(out_data, (self, other), backward)

    def __rmul__(self, other) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other) -> "Tensor":
        other = _coerce_operand(other, self.data)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.data.shape)
                )

        return Tensor._from_op(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return _coerce_operand(other, self.data).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._from_op(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Matrix multiplication
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other = _coerce_operand(other, self.data)
        if self.data.ndim != 2 or other.data.ndim != 2:
            raise ValueError("matmul supports 2-D operands only; reshape first")
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ grad)

        return Tensor._from_op(out_data, (self, other), backward)

    def __matmul__(self, other) -> "Tensor":
        return self.matmul(other)

    # ------------------------------------------------------------------
    # Non-linearities and element-wise functions
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._from_op(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable sigmoid.
        out_data = np.where(
            self.data >= 0,
            1.0 / (1.0 + np.exp(-np.clip(self.data, -500, 500))),
            np.exp(np.clip(self.data, -500, 500))
            / (1.0 + np.exp(np.clip(self.data, -500, 500))),
        )

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._from_op(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._from_op(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._from_op(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        return Tensor._from_op(out_data, (self,), backward)

    def clip(self, minimum: float | None = None, maximum_value: float | None = None) -> "Tensor":
        """Clamp values; gradients pass through only inside the clamp range."""
        out_data = np.clip(self.data, minimum, maximum_value)
        pass_through = np.ones_like(self.data)
        if minimum is not None:
            pass_through = pass_through * (self.data >= minimum)
        if maximum_value is not None:
            pass_through = pass_through * (self.data <= maximum_value)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * pass_through)

        return Tensor._from_op(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            expanded = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                for ax in sorted(a % self.data.ndim for a in axes):
                    expanded = np.expand_dims(expanded, ax)
            self._accumulate(np.broadcast_to(expanded, self.data.shape).copy())

        return Tensor._from_op(out_data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original_shape = self.data.shape
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original_shape))

        return Tensor._from_op(out_data, (self,), backward)

    def transpose(self) -> "Tensor":
        if self.data.ndim != 2:
            raise ValueError("transpose() supports 2-D tensors only")
        out_data = self.data.T

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.T)

        return Tensor._from_op(out_data, (self,), backward)


def concatenate(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    if not tensors:
        raise ValueError("concatenate() requires at least one tensor")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    axis_norm = axis % out_data.ndim
    sizes = [t.data.shape[axis_norm] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis_norm] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

    return Tensor._from_op(out_data, tensors, backward)


def maximum(left: Tensor, right: Tensor) -> Tensor:
    """Element-wise maximum with sub-gradient ties broken toward ``left``."""
    left = left if isinstance(left, Tensor) else Tensor(left)
    right = right if isinstance(right, Tensor) else Tensor(right)
    out_data = np.maximum(left.data, right.data)
    left_wins = left.data >= right.data

    def backward(grad: np.ndarray) -> None:
        if left.requires_grad:
            left._accumulate(_unbroadcast(grad * left_wins, left.data.shape))
        if right.requires_grad:
            right._accumulate(_unbroadcast(grad * (~left_wins), right.data.shape))

    return Tensor._from_op(out_data, (left, right), backward)
