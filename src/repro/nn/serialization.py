"""Saving and loading model parameters.

Used by the model-cost experiment (paper Section 4.7) to report the
serialized size of the three MSCN variants, and by
:class:`repro.core.estimator.MSCNEstimator` to persist trained models.
"""

from __future__ import annotations

import io
import os
from typing import Mapping

import numpy as np

__all__ = ["save_state_dict", "load_state_dict", "state_dict_num_bytes"]


def save_state_dict(state: Mapping[str, np.ndarray], path: str | os.PathLike) -> None:
    """Serialize a flat parameter dictionary to an ``.npz`` file."""
    arrays = {name: np.asarray(value) for name, value in state.items()}
    with open(path, "wb") as handle:
        np.savez(handle, **arrays)


def load_state_dict(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Load a parameter dictionary previously written by :func:`save_state_dict`."""
    with np.load(path) as archive:
        return {name: archive[name].copy() for name in archive.files}


def state_dict_num_bytes(state: Mapping[str, np.ndarray]) -> int:
    """Serialized size of a parameter dictionary in bytes.

    The paper reports the on-disk footprint of MSCN (1.6–2.6 MiB depending on
    the featurization variant); this helper measures the same quantity for our
    models without touching the filesystem.
    """
    buffer = io.BytesIO()
    np.savez(buffer, **{name: np.asarray(value) for name, value in state.items()})
    return buffer.getbuffer().nbytes
