"""Functional helpers used by the MSCN model.

The key primitive is :func:`masked_mean`, which implements the paper's
set-pooling step: the per-element MLP outputs of a set are averaged while
ignoring zero-padded dummy elements (Section 3.2 of the paper).
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, concatenate, maximum

__all__ = ["masked_mean", "masked_sum", "relu", "sigmoid", "concatenate", "maximum"]


def relu(tensor: Tensor) -> Tensor:
    """Rectified linear unit, ``max(0, x)``."""
    return tensor.relu()


def sigmoid(tensor: Tensor) -> Tensor:
    """Logistic sigmoid, ``1 / (1 + exp(-x))``."""
    return tensor.sigmoid()


def _validate_mask(values: Tensor, mask: np.ndarray) -> np.ndarray:
    mask = np.asarray(mask, dtype=np.float64)
    if mask.ndim == 2:
        mask = mask[:, :, None]
    if mask.ndim != 3 or mask.shape[:2] != values.shape[:2]:
        raise ValueError(
            f"mask shape {mask.shape} is incompatible with values shape {values.shape}"
        )
    return mask


def masked_sum(values: Tensor, mask: np.ndarray) -> Tensor:
    """Sum ``values`` of shape (batch, set, dim) over the set axis.

    ``mask`` has shape (batch, set) or (batch, set, 1) with ones marking real
    set elements and zeros marking padding.
    """
    mask = _validate_mask(values, mask)
    return (values * Tensor(mask)).sum(axis=1)


def masked_mean(values: Tensor, mask: np.ndarray) -> Tensor:
    """Average ``values`` of shape (batch, set, dim) over real set elements.

    Padded (masked-out) elements do not contribute.  Rows whose mask is all
    zero (an empty set, e.g. the join set of a single-table query) produce a
    zero vector rather than NaN — matching the reference implementation, which
    always keeps at least one zero-vector element for empty sets.
    """
    mask = _validate_mask(values, mask)
    summed = (values * Tensor(mask)).sum(axis=1)
    counts = mask.sum(axis=1)
    counts = np.maximum(counts, 1.0)
    return summed * Tensor(1.0 / counts)
