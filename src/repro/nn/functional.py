"""Functional helpers used by the MSCN model.

Two families of set-pooling primitives implement the paper's Section 3.2
averaging step (per-element MLP outputs pooled per set, ignoring dummy
elements):

* the *padded* primitives :func:`masked_mean` / :func:`masked_sum`, which
  operate on ``(batch, set, dim)`` tensors with a binary mask, and
* the *ragged* primitives :func:`segment_mean` / :func:`segment_sum`, which
  operate on flattened ``(total_elements, dim)`` tensors with CSR-style
  per-query offsets and never touch padding at all.

Both families are differentiable; the ragged path is the fast one (see
``repro.core.batching.RaggedDataset``).
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, concatenate, maximum

__all__ = [
    "masked_mean",
    "masked_sum",
    "segment_mean",
    "segment_sum",
    "segment_sum_array",
    "relu",
    "sigmoid",
    "concatenate",
    "maximum",
]


def relu(tensor: Tensor) -> Tensor:
    """Rectified linear unit, ``max(0, x)``."""
    return tensor.relu()


def sigmoid(tensor: Tensor) -> Tensor:
    """Logistic sigmoid, ``1 / (1 + exp(-x))``."""
    return tensor.sigmoid()


def _validate_mask(values: Tensor, mask: np.ndarray) -> np.ndarray:
    # Fast path: a pre-broadcast floating (batch, set, 1) mask (the model
    # expands its 2-D masks to zero-copy views) passes through untouched,
    # keeping float32 pooling in float32.
    if (
        isinstance(mask, np.ndarray)
        and mask.ndim == 3
        and mask.shape[2] == 1
        and mask.dtype.kind == "f"
        and mask.shape[:2] == values.shape[:2]
    ):
        return mask
    mask = np.asarray(mask, dtype=np.float64)
    if mask.ndim == 2:
        mask = mask[:, :, None]
    if mask.ndim != 3 or mask.shape[:2] != values.shape[:2]:
        raise ValueError(
            f"mask shape {mask.shape} is incompatible with values shape {values.shape}"
        )
    return mask


def masked_sum(values: Tensor, mask: np.ndarray) -> Tensor:
    """Sum ``values`` of shape (batch, set, dim) over the set axis.

    ``mask`` has shape (batch, set) or (batch, set, 1) with ones marking real
    set elements and zeros marking padding.
    """
    mask = _validate_mask(values, mask)
    return (values * Tensor(mask)).sum(axis=1)


def masked_mean(
    values: Tensor, mask: np.ndarray, inv_counts: np.ndarray | None = None
) -> Tensor:
    """Average ``values`` of shape (batch, set, dim) over real set elements.

    Padded (masked-out) elements do not contribute.  Rows whose mask is all
    zero (an empty set, e.g. the join set of a single-table query) produce a
    zero vector rather than NaN — matching the reference implementation, which
    always keeps at least one zero-vector element for empty sets.

    ``inv_counts`` optionally supplies the precomputed ``(batch, 1)``
    reciprocal real-element counts (``1 / max(mask.sum(axis=1), 1)``), saving
    the per-forward reduction; ``FeaturizedDataset`` caches them per workload.
    """
    mask = _validate_mask(values, mask)
    summed = (values * Tensor(mask)).sum(axis=1)
    if inv_counts is None:
        counts = mask.sum(axis=1)
        counts = np.maximum(counts, 1.0)
        inv_counts = 1.0 / counts
    return summed * Tensor(inv_counts)


def _segment_offsets(offsets: np.ndarray) -> np.ndarray:
    offsets = np.asarray(offsets, dtype=np.int64)
    if offsets.ndim != 1 or offsets.shape[0] < 1:
        raise ValueError("offsets must be a 1-D array of at least one boundary")
    return offsets


def segment_sum_array(
    data: np.ndarray,
    offsets: np.ndarray,
    lengths: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Plain-numpy segment sum over contiguous row segments.

    Accumulates slot-by-slot (segment element ``k`` of every segment is added
    in round ``k``), which is *left-associative per segment* — exactly the
    order ``(values * mask).sum(axis=1)`` uses on the padded layout, so the
    ragged and padded pooling paths are bit-identical in float64.
    (``np.add.reduceat`` would be a single call but accumulates in a
    different association order, breaking bit-equality; the slot loop runs at
    most ``max set size`` vectorized gather-adds, which is just as fast for
    the small sets of this workload shape.)
    """
    num_segments = lengths.shape[0]
    if out is None:
        out = np.zeros((num_segments, data.shape[1]), dtype=data.dtype)
    else:
        out[:] = 0.0
    if data.shape[0] == 0 or num_segments == 0:
        return out
    starts = offsets[:-1]
    max_length = int(lengths.max())
    for slot in range(max_length):
        active = np.flatnonzero(lengths > slot)
        # Each segment index appears at most once in ``active``, so a plain
        # fancy-indexed add is collision-free.
        out[active] += data[starts[active] + slot]
    return out


def segment_sum(values: Tensor, offsets: np.ndarray) -> Tensor:
    """Sum contiguous row segments of a ``(total, dim)`` tensor.

    ``offsets`` holds ``num_segments + 1`` monotonically non-decreasing row
    boundaries; segment ``i`` covers rows ``offsets[i]:offsets[i + 1]``.
    Empty segments produce zero rows.
    """
    offsets = _segment_offsets(offsets)
    data = values.data
    if data.ndim != 2:
        raise ValueError("segment_sum expects a 2-D (total, dim) tensor")
    if offsets[-1] != data.shape[0]:
        raise ValueError(
            f"offsets cover {offsets[-1]} rows but values has {data.shape[0]}"
        )
    lengths = np.diff(offsets)
    out = segment_sum_array(data, offsets, lengths)

    def backward(grad: np.ndarray) -> None:
        if values.requires_grad:
            values._accumulate(np.repeat(grad, lengths, axis=0))

    return Tensor._from_op(out, (values,), backward)


def segment_mean(
    values: Tensor, offsets: np.ndarray, inv_counts: np.ndarray | None = None
) -> Tensor:
    """Average contiguous row segments; empty segments produce zero rows.

    ``inv_counts`` optionally supplies the precomputed ``(num_segments, 1)``
    reciprocal segment lengths (``1 / max(length, 1)``), as cached by
    ``RaggedSet``.
    """
    summed = segment_sum(values, offsets)
    if inv_counts is None:
        lengths = np.diff(_segment_offsets(offsets)).astype(summed.data.dtype)
        inv_counts = (1.0 / np.maximum(lengths, 1.0))[:, None]
    return summed * Tensor(inv_counts)
