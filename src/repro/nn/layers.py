"""Neural-network layers built on :class:`repro.nn.tensor.Tensor`.

The paper uses two-layer fully-connected MLPs with ReLU activations for each
set module and a final output MLP whose last layer is a sigmoid (Section 3.2).
:class:`MLP` captures that two-layer building block; :class:`Sequential`
composes layers for the output network.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Iterator

import numpy as np

from repro.nn import init
from repro.nn.tensor import Tensor

__all__ = ["Module", "Linear", "ReLU", "Sigmoid", "Dropout", "Sequential", "MLP"]


class Module:
    """Base class for layers and models.

    Provides parameter discovery (recursing into attributes that are modules
    or lists of modules), ``train``/``eval`` mode switching, gradient zeroing
    and a flat ``state_dict`` keyed by dotted attribute paths.
    """

    def __init__(self) -> None:
        self.training = True

    # -- forward ---------------------------------------------------------
    def forward(self, *args, **kwargs) -> Tensor:  # pragma: no cover - interface
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)

    # -- discovery -------------------------------------------------------
    def _children(self) -> Iterator[tuple[str, "Module"]]:
        for attr_name, value in vars(self).items():
            if isinstance(value, Module):
                yield attr_name, value
            elif isinstance(value, (list, tuple)):
                for index, element in enumerate(value):
                    if isinstance(element, Module):
                        yield f"{attr_name}.{index}", element

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for attr_name, value in vars(self).items():
            if isinstance(value, Tensor) and value.requires_grad:
                yield f"{prefix}{attr_name}", value
        for child_name, child in self._children():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> list[Tensor]:
        return [parameter for _, parameter in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return sum(parameter.size for parameter in self.parameters())

    # -- training state --------------------------------------------------
    def train(self) -> "Module":
        self.training = True
        for _, child in self._children():
            child.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for _, child in self._children():
            child.eval()
        return self

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    # -- serialization ---------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        return OrderedDict(
            (name, parameter.data.copy()) for name, parameter in self.named_parameters()
        )

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise ValueError(
                f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, parameter in own.items():
            # Keep the parameter's compute dtype (the model may run float32).
            value = np.asarray(state[name], dtype=parameter.data.dtype)
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"parameter {name!r} has shape {parameter.data.shape}, "
                    f"state provides {value.shape}"
                )
            # Copy into the existing buffer so references held by optimizers
            # and inference engines stay valid.
            np.copyto(parameter.data, value)


class Linear(Module):
    """Affine transformation ``y = x W + b`` over the last axis of 2-D input."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
        initializer: str = "kaiming",
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear layer dimensions must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        if initializer == "kaiming":
            weight = init.kaiming_uniform(rng, in_features, out_features)
        elif initializer == "xavier":
            weight = init.xavier_uniform(rng, in_features, out_features)
        else:
            raise ValueError(f"unknown initializer {initializer!r}")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(weight, requires_grad=True, name="weight")
        self.bias = Tensor(init.zeros((out_features,)), requires_grad=True, name="bias")

    def forward(self, inputs: Tensor) -> Tensor:
        if inputs.ndim != 2:
            raise ValueError(
                f"Linear expects 2-D input (batch, features); got shape {inputs.shape}"
            )
        if inputs.shape[1] != self.in_features:
            raise ValueError(
                f"Linear expects {self.in_features} input features, got {inputs.shape[1]}"
            )
        return inputs.matmul(self.weight) + self.bias


class ReLU(Module):
    """Rectified linear unit activation layer."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.relu()


class Sigmoid(Module):
    """Logistic sigmoid activation layer."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.sigmoid()


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, probability: float = 0.5, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= probability < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.probability = probability
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, inputs: Tensor) -> Tensor:
        if not self.training or self.probability == 0.0:
            return inputs
        keep = 1.0 - self.probability
        mask = (self._rng.random(inputs.shape) < keep) / keep
        return inputs * Tensor(mask)


class Sequential(Module):
    """Apply a list of modules in order."""

    def __init__(self, layers: Iterable[Module]) -> None:
        super().__init__()
        self.layers = list(layers)
        if not self.layers:
            raise ValueError("Sequential requires at least one layer")

    def forward(self, inputs: Tensor) -> Tensor:
        output = inputs
        for layer in self.layers:
            output = layer(output)
        return output


class MLP(Module):
    """Two-layer fully-connected network with ReLU activations.

    This is the per-element set module of the paper: every element of the
    table / join / predicate set is passed through the same two-layer MLP with
    shared parameters before pooling.
    """

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        out_features: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        out_features = out_features if out_features is not None else hidden_features
        rng = rng if rng is not None else np.random.default_rng()
        self.first = Linear(in_features, hidden_features, rng=rng)
        self.second = Linear(hidden_features, out_features, rng=rng)

    def forward(self, inputs: Tensor) -> Tensor:
        hidden = self.first(inputs).relu()
        return self.second(hidden).relu()
