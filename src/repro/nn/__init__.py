"""A minimal neural-network training stack built on numpy.

The paper trains MSCN with PyTorch on a GPU.  PyTorch is not available in
this environment, so ``repro.nn`` provides the pieces MSCN actually needs:

* :class:`~repro.nn.tensor.Tensor` — a reverse-mode autograd tensor with
  broadcasting-aware gradients,
* layers (:class:`~repro.nn.layers.Linear`, activations, ``Sequential`` and a
  two-layer ``MLP`` used for every set module),
* optimizers (:class:`~repro.nn.optim.Adam`, :class:`~repro.nn.optim.SGD`),
* the loss functions discussed in Section 4.8 of the paper (mean q-error,
  mean squared error, geometric-mean q-error),
* model (de)serialization helpers.

All gradients are validated against central finite differences in the test
suite.
"""

from repro.nn import functional
from repro.nn.layers import MLP, Dropout, Linear, Module, ReLU, Sequential, Sigmoid
from repro.nn.loss import geometric_q_error_loss, mse_loss, q_error_loss
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.serialization import load_state_dict, save_state_dict, state_dict_num_bytes
from repro.nn.tensor import Tensor, concatenate, maximum, no_grad

__all__ = [
    "Tensor",
    "concatenate",
    "maximum",
    "no_grad",
    "functional",
    "Module",
    "Linear",
    "ReLU",
    "Sigmoid",
    "Dropout",
    "Sequential",
    "MLP",
    "Optimizer",
    "SGD",
    "Adam",
    "q_error_loss",
    "mse_loss",
    "geometric_q_error_loss",
    "save_state_dict",
    "load_state_dict",
    "state_dict_num_bytes",
]
