"""Dataset generation and the schema-agnostic dataset registry.

The paper evaluates on a snapshot of the real Internet Movie Database (IMDb),
which cannot be downloaded in this offline environment;
:mod:`repro.datasets.imdb` generates a synthetic substitute with the same
star schema, skewed value distributions and — crucially — *join-crossing
correlations* (see DESIGN.md for the substitution argument).

Because the paper's featurization claims to generalize to any PK/FK schema,
this package is organised around :class:`~repro.datasets.spec.DatasetSpec`:
a registrable bundle of schema, correlated generator, join-graph metadata
and recommended workload shape.  Three datasets ship built in:

* ``imdb`` — the dimension-hub star of the paper's evaluation,
* ``retail`` — a TPC-style fact-hub star (wide Zipf fan-outs, skewed
  dimensions, correlations between dimensions through the fact table),
* ``forum`` — a snowflake chain of join diameter 4 whose planted
  correlations span up to three join hops.

Look datasets up via :func:`~repro.datasets.registry.get_dataset`; register
new ones with :func:`~repro.datasets.registry.register_dataset`.
"""

from repro.datasets.forum import FORUM_SPEC, ForumConfig, forum_schema, generate_forum
from repro.datasets.imdb import (
    IMDB_SPEC,
    SyntheticIMDbConfig,
    generate_imdb,
    imdb_schema,
)
from repro.datasets.registry import (
    dataset_names,
    get_dataset,
    register_dataset,
    registered_datasets,
)
from repro.datasets.retail import (
    RETAIL_SPEC,
    RetailConfig,
    generate_retail,
    retail_schema,
)
from repro.datasets.spec import DatasetSpec, JoinGraphSummary, WorkloadRecommendation

__all__ = [
    "DatasetSpec",
    "JoinGraphSummary",
    "WorkloadRecommendation",
    "register_dataset",
    "get_dataset",
    "dataset_names",
    "registered_datasets",
    "SyntheticIMDbConfig",
    "generate_imdb",
    "imdb_schema",
    "IMDB_SPEC",
    "RetailConfig",
    "generate_retail",
    "retail_schema",
    "RETAIL_SPEC",
    "ForumConfig",
    "generate_forum",
    "forum_schema",
    "FORUM_SPEC",
]
