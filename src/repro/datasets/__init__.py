"""Dataset generation.

The paper evaluates on a snapshot of the real Internet Movie Database (IMDb),
which cannot be downloaded in this offline environment.
:mod:`repro.datasets.imdb` generates a synthetic database with the same star
schema around ``title``, skewed value distributions and — crucially —
*join-crossing correlations*, which are the phenomenon the paper's estimator
is designed to capture (see DESIGN.md for the full substitution argument).
"""

from repro.datasets.imdb import (
    SyntheticIMDbConfig,
    generate_imdb,
    imdb_schema,
)

__all__ = ["SyntheticIMDbConfig", "generate_imdb", "imdb_schema"]
