"""Synthetic, correlated IMDb-like database.

The generated schema mirrors the tables JOB-light touches: a central ``title``
dimension and five fact tables referencing it through ``movie_id``:

* ``movie_companies`` (company_id, company_type_id)
* ``cast_info`` (person_id, role_id, nr_order)
* ``movie_info`` (info_type_id)
* ``movie_info_idx`` (info_type_id)
* ``movie_keyword`` (keyword_id)

Real IMDb is difficult for cardinality estimators because of skew and
*join-crossing correlations* (the paper's example: French actors appear more
often in romantic movies).  The generator plants analogous structure:

* ``production_year`` is skewed towards recent years; ``kind_id`` is skewed
  towards movies and TV episodes.
* Each company has an *era*: movies choose companies whose era matches their
  production year, so ``movie_companies.company_id`` correlates with
  ``title.production_year`` across the join.
* Cast sizes depend on ``kind_id`` and ``production_year`` (feature films and
  recent titles have larger casts), so the fan-out of ``cast_info`` — and the
  role mix — correlates with title attributes.
* Keywords are drawn from kind-specific vocabularies, correlating
  ``movie_keyword.keyword_id`` with ``title.kind_id``.
* The amount of ``movie_info`` per title grows with recency.

These correlations are exactly what breaks the independence assumption of the
PostgreSQL-style baseline and what sampling cannot see once a selective
predicate empties the sample, so the qualitative comparisons of the paper's
evaluation carry over to the synthetic data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets._generation import ColumnBlockWriter, chunk_spans, chunk_stream_label
from repro.datasets._generation import fanout_counts as _fanout_counts
from repro.datasets._generation import zipf_choice as _zipf_choice
from repro.datasets.registry import register_dataset
from repro.datasets.spec import DatasetSpec, WorkloadRecommendation
from repro.db.schema import ColumnSchema, ForeignKey, Schema, TableSchema
from repro.db.table import Database, Table
from repro.utils.rng import spawn_rng

__all__ = ["SyntheticIMDbConfig", "imdb_schema", "generate_imdb", "IMDB_SPEC"]

_MIN_YEAR = 1880
_MAX_YEAR = 2019
_NUM_KINDS = 7  # movie, tv series, tv episode, video, tv movie, video game, short


@dataclass(frozen=True)
class SyntheticIMDbConfig:
    """Size and skew knobs of the synthetic IMDb generator.

    The defaults generate a database of roughly 250k tuples, small enough to
    label tens of thousands of training queries on a laptop while preserving
    the skew/correlation structure.  ``scale`` multiplies ``num_titles`` (and
    with it every fact table) without touching the value distributions.

    ``chunk_rows`` switches the title and fact generators to streaming chunked
    emission over *title* spans: every chunk draws from its own derived RNG
    stream and appends into growable column storage, bounding peak memory by
    the per-chunk intermediates.  ``None`` keeps the historical whole-array
    draw order bit-identically; chunked output is deterministic for a fixed
    ``(scale, seed, chunk_rows)`` but is a different (equally valid) sample.
    """

    num_titles: int = 20_000
    num_companies: int = 2_000
    num_persons: int = 50_000
    num_keywords: int = 5_000
    num_info_types: int = 110
    mean_companies_per_title: float = 2.2
    mean_cast_per_title: float = 4.0
    mean_info_per_title: float = 3.0
    mean_info_idx_per_title: float = 1.4
    mean_keywords_per_title: float = 2.5
    seed: int = 42
    scale: float = 1.0
    chunk_rows: int | None = None

    def __post_init__(self) -> None:
        if self.num_titles <= 0:
            raise ValueError("num_titles must be positive")
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.chunk_rows is not None and self.chunk_rows < 1:
            raise ValueError("chunk_rows must be at least 1 when given")

    @property
    def effective_titles(self) -> int:
        return max(int(round(self.num_titles * self.scale)), 10)


def imdb_schema() -> Schema:
    """The star schema shared by the generator, the workloads and JOB-light."""
    title = TableSchema(
        name="title",
        columns=(
            ColumnSchema("id", "primary_key"),
            ColumnSchema("kind_id"),
            ColumnSchema("production_year"),
            ColumnSchema("phonetic_code"),
            ColumnSchema("season_nr"),
            ColumnSchema("episode_nr"),
        ),
    )
    movie_companies = TableSchema(
        name="movie_companies",
        columns=(
            ColumnSchema("id", "primary_key"),
            ColumnSchema("movie_id", "foreign_key"),
            ColumnSchema("company_id"),
            ColumnSchema("company_type_id"),
        ),
    )
    cast_info = TableSchema(
        name="cast_info",
        columns=(
            ColumnSchema("id", "primary_key"),
            ColumnSchema("movie_id", "foreign_key"),
            ColumnSchema("person_id"),
            ColumnSchema("role_id"),
            ColumnSchema("nr_order"),
        ),
    )
    movie_info = TableSchema(
        name="movie_info",
        columns=(
            ColumnSchema("id", "primary_key"),
            ColumnSchema("movie_id", "foreign_key"),
            ColumnSchema("info_type_id"),
        ),
    )
    movie_info_idx = TableSchema(
        name="movie_info_idx",
        columns=(
            ColumnSchema("id", "primary_key"),
            ColumnSchema("movie_id", "foreign_key"),
            ColumnSchema("info_type_id"),
        ),
    )
    movie_keyword = TableSchema(
        name="movie_keyword",
        columns=(
            ColumnSchema("id", "primary_key"),
            ColumnSchema("movie_id", "foreign_key"),
            ColumnSchema("keyword_id"),
        ),
    )
    fact_tables = ("movie_companies", "cast_info", "movie_info", "movie_info_idx", "movie_keyword")
    foreign_keys = tuple(
        ForeignKey(table=name, column="movie_id", ref_table="title", ref_column="id")
        for name in fact_tables
    )
    return Schema(
        tables=(title, movie_companies, cast_info, movie_info, movie_info_idx, movie_keyword),
        foreign_keys=foreign_keys,
    )


# ----------------------------------------------------------------------
# Generation helpers
# ----------------------------------------------------------------------
def _skewed_years(rng: np.random.Generator, count: int) -> np.ndarray:
    """Production years skewed towards the recent past (like real IMDb)."""
    # A Beta(5, 1.5) pushed onto the year range puts most mass after ~1980.
    fractions = rng.beta(5.0, 1.5, size=count)
    years = _MIN_YEAR + np.round(fractions * (_MAX_YEAR - _MIN_YEAR)).astype(np.int64)
    return np.clip(years, _MIN_YEAR, _MAX_YEAR)


def _generate_title(config: SyntheticIMDbConfig, schema: Schema, num_titles: int) -> Table:
    writer = ColumnBlockWriter(
        ("id", "kind_id", "production_year", "phonetic_code", "season_nr", "episode_nr")
    )
    # kind_id: 1=movie, 2=tv series, 3=tv episode, 4=video, 5=tv movie, 6=video game, 7=short
    kind_probabilities = np.array([0.35, 0.05, 0.30, 0.08, 0.06, 0.04, 0.12])
    for index, start, stop in chunk_spans(num_titles, config.chunk_rows):
        title_rng = spawn_rng(
            config.seed, chunk_stream_label("title", config.chunk_rows, index)
        )
        rows = stop - start
        production_year = _skewed_years(title_rng, rows)
        kind_id = title_rng.choice(_NUM_KINDS, size=rows, p=kind_probabilities) + 1
        # Within-table correlation: the phonetic code is concentrated in a
        # kind- and decade-specific slice of the code space (with noise), so a
        # conjunction of predicates on (kind_id, production_year, phonetic_code)
        # violates the attribute-value-independence assumption.
        decade = (production_year - _MIN_YEAR) // 10
        code_center = (kind_id * 137 + decade * 61) % 1_900
        code_noise = np.abs(title_rng.normal(0.0, 12.0, size=rows)).astype(np.int64)
        phonetic_code = np.clip(code_center + code_noise, 1, 2_000).astype(np.int64)
        # Only TV series / episodes have seasons and episode numbers (another
        # within-table correlation with kind_id).
        is_episode = np.isin(kind_id, (2, 3))
        season_nr = np.where(is_episode, title_rng.integers(1, 31, size=rows), 0)
        episode_nr = np.where(kind_id == 3, title_rng.integers(1, 200, size=rows), 0)
        writer.append(
            {
                "id": np.arange(start + 1, stop + 1, dtype=np.int64),
                "kind_id": kind_id.astype(np.int64),
                "production_year": production_year,
                "phonetic_code": phonetic_code,
                "season_nr": season_nr.astype(np.int64),
                "episode_nr": episode_nr.astype(np.int64),
            }
        )
    return Table(schema.table("title"), writer.finalize())


def generate_imdb(config: SyntheticIMDbConfig | None = None) -> Database:
    """Generate a synthetic IMDb-like :class:`~repro.db.table.Database`."""
    config = config if config is not None else SyntheticIMDbConfig()
    schema = imdb_schema()
    num_titles = config.effective_titles

    title_table = _generate_title(config, schema, num_titles)
    # Dimension-sized (O(titles)) arrays shared by every fact generator.
    title_ids = title_table.column("id")
    production_year = title_table.column("production_year")
    kind_id = title_table.column("kind_id")

    tables = {"title": title_table}
    tables["movie_companies"] = _generate_movie_companies(
        config, schema, title_ids, production_year, kind_id
    )
    tables["cast_info"] = _generate_cast_info(config, schema, title_ids, production_year, kind_id)
    tables["movie_info"] = _generate_movie_info(
        config, schema, "movie_info", config.mean_info_per_title, title_ids, production_year
    )
    tables["movie_info_idx"] = _generate_movie_info(
        config,
        schema,
        "movie_info_idx",
        config.mean_info_idx_per_title,
        title_ids,
        production_year,
    )
    tables["movie_keyword"] = _generate_movie_keyword(config, schema, title_ids, kind_id)
    return Database(schema, tables)


def _generate_movie_companies(
    config: SyntheticIMDbConfig,
    schema: Schema,
    title_ids: np.ndarray,
    production_year: np.ndarray,
    kind_id: np.ndarray,
) -> Table:
    num_titles = len(title_ids)
    # Join-crossing correlation: each company has an era (a centre year);
    # movies mostly pick companies whose era is close to their production
    # year.  The correlation is deliberately *leaky* (15% of assignments are
    # era-independent): a mismatched company/era combination therefore has a
    # small but usually non-zero cardinality, which is exactly the situation
    # in which independence-based estimators over-estimate by large factors
    # (the paper's "PostgreSQL errors are skewed towards the positive
    # spectrum") instead of the query being discarded as empty.  The era
    # table is company-dimension-sized and shared by every chunk.
    company_rng = spawn_rng(config.seed, "company_eras")
    company_eras = _MIN_YEAR + company_rng.beta(4.0, 1.5, size=config.num_companies) * (
        _MAX_YEAR - _MIN_YEAR
    )
    company_popularity = 1.0 / np.arange(1, config.num_companies + 1, dtype=np.float64) ** 1.15
    popularity_distribution = company_popularity / company_popularity.sum()

    writer = ColumnBlockWriter(("id", "movie_id", "company_id", "company_type_id"))
    for index, start, stop in chunk_spans(num_titles, config.chunk_rows):
        rng = spawn_rng(
            config.seed, chunk_stream_label("movie_companies", config.chunk_rows, index)
        )
        # Recent titles and feature films attract slightly more production companies.
        year_factor = 0.5 + (production_year[start:stop] - _MIN_YEAR) / (_MAX_YEAR - _MIN_YEAR)
        kind_factor = np.where(kind_id[start:stop] == 1, 1.3, 1.0)
        counts = _fanout_counts(rng, config.mean_companies_per_title * year_factor * kind_factor)
        movie_id = np.repeat(title_ids[start:stop], counts)
        total = len(movie_id)
        if total == 0:
            continue

        row_years = np.repeat(production_year[start:stop], counts)
        company_id = np.empty(total, dtype=np.int64)
        # Vectorized era matching: weight each company by popularity * closeness to the row's year.
        # Process in chunks to bound the (rows x companies) weight matrix.
        chunk_size = 5_000
        era_leak = 0.05
        for row_start in range(0, total, chunk_size):
            row_stop = min(row_start + chunk_size, total)
            year_chunk = row_years[row_start:row_stop, None]
            closeness = np.exp(-np.abs(year_chunk - company_eras[None, :]) / 5.0)
            weights = closeness * company_popularity[None, :]
            weights /= weights.sum(axis=1, keepdims=True)
            weights = (1.0 - era_leak) * weights + era_leak * popularity_distribution[None, :]
            cumulative = np.cumsum(weights, axis=1)
            draws = rng.random((row_stop - row_start, 1))
            company_id[row_start:row_stop] = (draws < cumulative).argmax(axis=1) + 1

        # Within-table correlation: a company mostly acts in a single role
        # (production company, distributor, ...), so company_type_id is largely a
        # function of company_id with a little noise.
        base_type = (company_id % 4) + 1
        noisy = rng.random(total) < 0.15
        company_type_id = np.where(
            noisy, rng.integers(1, 5, size=total), base_type
        ).astype(np.int64)
        offset = writer.num_rows
        writer.append(
            {
                "id": np.arange(offset + 1, offset + total + 1, dtype=np.int64),
                "movie_id": movie_id,
                "company_id": company_id,
                "company_type_id": company_type_id,
            }
        )
    return Table(schema.table("movie_companies"), writer.finalize())


def _generate_cast_info(
    config: SyntheticIMDbConfig,
    schema: Schema,
    title_ids: np.ndarray,
    production_year: np.ndarray,
    kind_id: np.ndarray,
) -> Table:
    num_titles = len(title_ids)
    writer = ColumnBlockWriter(("id", "movie_id", "person_id", "role_id", "nr_order"))
    for index, start, stop in chunk_spans(num_titles, config.chunk_rows):
        rng = spawn_rng(
            config.seed, chunk_stream_label("cast_info", config.chunk_rows, index)
        )
        span_kind = kind_id[start:stop]
        span_year = production_year[start:stop]
        # Feature films have larger casts than episodes/shorts; recency adds a bit.
        kind_factor = np.select(
            [span_kind == 1, span_kind == 3, span_kind == 7], [1.6, 0.8, 0.5], default=1.0
        )
        year_factor = 0.6 + 0.8 * (span_year - _MIN_YEAR) / (_MAX_YEAR - _MIN_YEAR)
        counts = _fanout_counts(rng, config.mean_cast_per_title * kind_factor * year_factor)
        movie_id = np.repeat(title_ids[start:stop], counts)
        total = len(movie_id)
        if total == 0:
            continue
        # Join-crossing correlation (the paper's "French actors appear in romantic
        # movies" analogue): performers are active in a specific era, so the pool
        # of person_ids depends on the title's production year.  Persons are
        # partitioned into era buckets; 85% of cast rows draw from the bucket that
        # matches the title's era, the rest from the global (skewed) population.
        num_era_buckets = 8
        row_years = np.repeat(span_year, counts)
        row_bucket = np.clip(
            ((row_years - _MIN_YEAR) * num_era_buckets) // (_MAX_YEAR - _MIN_YEAR + 1),
            0,
            num_era_buckets - 1,
        )
        persons_per_bucket = max(config.num_persons // num_era_buckets, 1)
        person_id = _zipf_choice(rng, config.num_persons, total, exponent=1.1)
        era_specific = rng.random(total) < 0.93
        if era_specific.any():
            within_bucket = _zipf_choice(rng, persons_per_bucket, int(era_specific.sum()), exponent=1.1)
            person_id[era_specific] = np.clip(
                row_bucket[era_specific] * persons_per_bucket + within_bucket,
                1,
                config.num_persons,
            )
        # Role mix differs by title kind (join-crossing correlation with kind_id):
        # feature films have proportionally more actors/actresses, episodes more
        # "self" appearances, shorts more directors.
        row_kind = np.repeat(span_kind, counts)
        role_id = np.empty(total, dtype=np.int64)
        role_profiles = {
            1: [0.34, 0.26, 0.08, 0.08, 0.06, 0.05, 0.05, 0.04, 0.02, 0.01, 0.01],
            3: [0.22, 0.18, 0.05, 0.05, 0.04, 0.03, 0.03, 0.02, 0.01, 0.36, 0.01],
            7: [0.20, 0.15, 0.25, 0.10, 0.08, 0.07, 0.05, 0.04, 0.03, 0.02, 0.01],
        }
        default_profile = [0.28, 0.22, 0.10, 0.08, 0.07, 0.06, 0.06, 0.05, 0.04, 0.03, 0.01]
        for kind, profile in list(role_profiles.items()) + [(None, default_profile)]:
            mask = (row_kind == kind) if kind is not None else ~np.isin(row_kind, list(role_profiles))
            size = int(mask.sum())
            if size:
                role_id[mask] = rng.choice(11, size=size, p=profile) + 1
        # Within-table correlation: a given person tends to appear in a single
        # role (an actor acts, a composer composes), so person_id largely
        # determines role_id.
        sticky = rng.random(total) < 0.8
        role_id = np.where(sticky, (person_id % 11) + 1, role_id).astype(np.int64)
        # Billing order correlates with role: leading roles get low nr_order.
        nr_order = np.where(
            role_id <= 2,
            rng.integers(1, 11, size=total),
            rng.integers(5, 51, size=total),
        ).astype(np.int64)
        offset = writer.num_rows
        writer.append(
            {
                "id": np.arange(offset + 1, offset + total + 1, dtype=np.int64),
                "movie_id": movie_id,
                "person_id": person_id,
                "role_id": role_id,
                "nr_order": nr_order,
            }
        )
    return Table(schema.table("cast_info"), writer.finalize())


def _generate_movie_info(
    config: SyntheticIMDbConfig,
    schema: Schema,
    table_name: str,
    mean_fanout: float,
    title_ids: np.ndarray,
    production_year: np.ndarray,
) -> Table:
    writer = ColumnBlockWriter(("id", "movie_id", "info_type_id"))
    for index, start, stop in chunk_spans(len(title_ids), config.chunk_rows):
        rng = spawn_rng(
            config.seed, chunk_stream_label(table_name, config.chunk_rows, index)
        )
        span_year = production_year[start:stop]
        year_factor = 0.4 + 1.2 * (span_year - _MIN_YEAR) / (_MAX_YEAR - _MIN_YEAR)
        counts = _fanout_counts(rng, mean_fanout * year_factor)
        movie_id = np.repeat(title_ids[start:stop], counts)
        total = len(movie_id)
        if total == 0:
            continue
        # Join-crossing correlation: the info types recorded for a title depend on
        # its era (e.g. "color info" for old titles vs "streaming availability"
        # for recent ones): each row draws from an era-specific window of the
        # info-type space with 30% era-independent noise.
        row_years = np.repeat(span_year, counts)
        era_bucket = ((row_years - _MIN_YEAR) * 4) // (_MAX_YEAR - _MIN_YEAR + 1)
        window = max(config.num_info_types // 4, 1)
        era_offset = era_bucket * window
        specific = era_offset + _zipf_choice(rng, window, total, exponent=0.9)
        generic = _zipf_choice(rng, config.num_info_types, total, exponent=0.9)
        use_generic = rng.random(total) < 0.15
        info_type_id = np.clip(
            np.where(use_generic, generic, specific), 1, config.num_info_types
        ).astype(np.int64)
        offset = writer.num_rows
        writer.append(
            {
                "id": np.arange(offset + 1, offset + total + 1, dtype=np.int64),
                "movie_id": movie_id,
                "info_type_id": info_type_id,
            }
        )
    return Table(schema.table(table_name), writer.finalize())


def _generate_movie_keyword(
    config: SyntheticIMDbConfig,
    schema: Schema,
    title_ids: np.ndarray,
    kind_id: np.ndarray,
) -> Table:
    writer = ColumnBlockWriter(("id", "movie_id", "keyword_id"))
    shared_head = max(config.num_keywords // 10, 1)
    slice_width = max((config.num_keywords - shared_head) // _NUM_KINDS, 1)
    for index, start, stop in chunk_spans(len(title_ids), config.chunk_rows):
        rng = spawn_rng(
            config.seed, chunk_stream_label("movie_keyword", config.chunk_rows, index)
        )
        counts = _fanout_counts(
            rng, np.full(stop - start, config.mean_keywords_per_title, dtype=np.float64)
        )
        movie_id = np.repeat(title_ids[start:stop], counts)
        total = len(movie_id)
        if total == 0:
            continue
        # Kind-specific keyword vocabularies: each kind draws from its own slice of
        # the keyword id space (with a shared popular head), correlating keyword_id
        # with title.kind_id across the join.
        row_kind = np.repeat(kind_id[start:stop], counts)
        keyword_id = np.empty(total, dtype=np.int64)
        # Leaky mixture: 15% from a shared popular head, 20% era/kind-independent
        # (so mismatched kind/keyword combinations stay non-empty), the rest from
        # a kind-specific vocabulary slice.
        source = rng.random(total)
        use_shared = source < 0.15
        use_any = (source >= 0.15) & (source < 0.23)
        keyword_id[use_shared] = _zipf_choice(rng, shared_head, int(use_shared.sum()), exponent=1.2)
        keyword_id[use_any] = _zipf_choice(rng, config.num_keywords, int(use_any.sum()), exponent=1.05)
        specific = ~(use_shared | use_any)
        if specific.any():
            offsets = shared_head + (row_kind[specific] - 1) * slice_width
            keyword_id[specific] = offsets + _zipf_choice(
                rng, slice_width, int(specific.sum()), exponent=1.15
            )
        keyword_id = np.clip(keyword_id, 1, config.num_keywords)
        offset = writer.num_rows
        writer.append(
            {
                "id": np.arange(offset + 1, offset + total + 1, dtype=np.int64),
                "movie_id": movie_id,
                "keyword_id": keyword_id,
            }
        )
    return Table(schema.table("movie_keyword"), writer.finalize())


#: Scales at or above this switch the spec generator to streaming chunked
#: emission; below it the historical whole-array draw order keeps existing
#: seeded snapshots bit-identical.
_STREAMING_SCALE = 8.0
_STREAMING_CHUNK_ROWS = 16_384


def _generate_for_spec(scale: float, seed: int) -> Database:
    chunk_rows = _STREAMING_CHUNK_ROWS if scale >= _STREAMING_SCALE else None
    return generate_imdb(SyntheticIMDbConfig(scale=scale, seed=seed, chunk_rows=chunk_rows))


#: The registered spec of the paper's original evaluation schema: a star of
#: five fact tables around ``title``, era/kind-conditioned fact attributes.
#: At the ``large`` tier (~240k titles) ``cast_info`` alone crosses one
#: million rows and the whole snapshot holds ~3M tuples.
IMDB_SPEC = register_dataset(
    DatasetSpec(
        name="imdb",
        description=(
            "JOB-light-style IMDb star: five fact tables around 'title' with "
            "era- and kind-conditioned join-crossing correlations"
        ),
        topology="star",
        schema_factory=imdb_schema,
        generator=_generate_for_spec,
        default_seed=42,
        workload=WorkloadRecommendation(
            max_joins=2,
            scale_max_joins=4,
            num_training_queries=3000,
            num_eval_queries=500,
        ),
        scale_tiers=(("small", 0.25), ("medium", 1.0), ("large", 13.0)),
    )
)
