"""Schema-agnostic dataset specifications.

The paper argues (Section 3.1) that MSCN's featurization applies to *any*
PK/FK schema: vocabularies are derived from the schema's tables, join edges
and non-key columns, never from dataset-specific constants.  A
:class:`DatasetSpec` is the contract that makes the rest of this codebase
honour that claim — it bundles everything a training/evaluation pipeline
needs to run against a dataset it has never seen:

* a :class:`~repro.db.schema.Schema` factory (the vocabulary source),
* a correlated data generator ``(scale, seed) -> Database`` (every dataset
  must plant join-crossing correlations, the phenomenon the paper's model is
  designed to capture),
* derived join-graph metadata (:class:`JoinGraphSummary`): topology, the
  largest satisfiable join count and the join diameter — the quantities the
  workload generators need to produce valid stratified workloads,
* a :class:`WorkloadRecommendation` with the join bounds and workload sizes
  the dataset was designed for.

Specs are registered in :mod:`repro.datasets.registry`; everything downstream
(``workload``, ``evaluation.experiments``, ``evaluation.scenarios``, the
benchmarks) consumes specs, so adding a dataset is one module plus one
``register_dataset`` call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.db.schema import Schema
from repro.db.table import Database
from repro.workload.generator import WorkloadConfig

__all__ = [
    "WorkloadRecommendation",
    "JoinGraphSummary",
    "DatasetSpec",
    "DEFAULT_SCALE_TIERS",
]

#: Named scale tiers shared by all datasets unless a spec overrides them.
#: ``small`` is the CI-friendly default of the scenario matrix, ``medium``
#: the generator's design size, and ``large`` the out-of-core tier — specs
#: that advertise a million-row fact table override ``large`` with whatever
#: multiplier reaches it for their schema.
DEFAULT_SCALE_TIERS: tuple[tuple[str, float], ...] = (
    ("small", 0.25),
    ("medium", 1.0),
    ("large", 8.0),
)


@dataclass(frozen=True)
class WorkloadRecommendation:
    """The workload shape a dataset was designed to be trained/evaluated on.

    ``max_joins`` bounds the training and synthetic-evaluation workloads (the
    paper trains IMDb on 0-2 joins); ``scale_max_joins`` is the upper bound of
    the *scale* generalization workload and may exceed ``max_joins``.
    """

    max_joins: int = 2
    scale_max_joins: int = 4
    num_training_queries: int = 3000
    num_eval_queries: int = 500
    max_predicates_per_table: int | None = None

    def __post_init__(self) -> None:
        if self.max_joins < 0 or self.scale_max_joins < 0:
            raise ValueError("join bounds must be non-negative")
        if self.num_training_queries <= 0 or self.num_eval_queries <= 0:
            raise ValueError("workload sizes must be positive")


@dataclass(frozen=True)
class JoinGraphSummary:
    """Join-graph metadata derived from a schema (never hand-maintained)."""

    num_tables: int
    num_join_edges: int
    max_joins_per_query: int
    diameter: int

    @classmethod
    def from_schema(cls, schema: Schema) -> "JoinGraphSummary":
        return cls(
            num_tables=len(schema.tables),
            num_join_edges=len(schema.join_edges()),
            max_joins_per_query=schema.max_joins_per_query(),
            diameter=schema.join_diameter(),
        )


@dataclass(frozen=True)
class DatasetSpec:
    """A registrable dataset: schema, correlated generator, workload defaults.

    Parameters
    ----------
    name:
        Registry key (``"imdb"``, ``"retail"``, ...).
    description:
        One-line summary shown by listings and reports.
    topology:
        Join-graph shape label (``"star"``, ``"snowflake"``, ...); purely
        descriptive — all structural metadata is derived from the schema.
    schema_factory:
        Zero-argument callable building the dataset's schema.
    generator:
        ``(scale, seed) -> Database`` building a correlated database snapshot;
        ``scale`` multiplies the row counts without changing distributions.
    default_seed:
        Seed used when :meth:`generate` is called without one.
    workload:
        Recommended workload bounds/sizes (see :class:`WorkloadRecommendation`).
    scale_tiers:
        Named ``(tier, scale)`` pairs accepted wherever a scale is expected
        (``generate("large")``); specs size their ``large`` tier to cross the
        million-fact-row line for their own schema.
    """

    name: str
    description: str
    topology: str
    schema_factory: Callable[[], Schema]
    generator: Callable[[float, int], Database]
    default_seed: int = 42
    workload: WorkloadRecommendation = field(default_factory=WorkloadRecommendation)
    scale_tiers: tuple[tuple[str, float], ...] = DEFAULT_SCALE_TIERS

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a dataset spec needs a non-empty name")
        if not self.scale_tiers:
            raise ValueError("a dataset spec needs at least one scale tier")
        seen: set[str] = set()
        for tier, value in self.scale_tiers:
            if not tier:
                raise ValueError("scale tier names must be non-empty")
            if tier in seen:
                raise ValueError(f"duplicate scale tier {tier!r}")
            seen.add(tier)
            if value <= 0:
                raise ValueError(f"scale tier {tier!r} must map to a positive scale")

    # -- schema and metadata (cached: specs are immutable) ----------------
    @property
    def schema(self) -> Schema:
        cached = self.__dict__.get("_schema")
        if cached is None:
            cached = self.schema_factory()
            object.__setattr__(self, "_schema", cached)
        return cached

    def join_graph(self) -> JoinGraphSummary:
        cached = self.__dict__.get("_join_graph")
        if cached is None:
            cached = JoinGraphSummary.from_schema(self.schema)
            object.__setattr__(self, "_join_graph", cached)
        return cached

    # -- generation -------------------------------------------------------
    def tier_names(self) -> tuple[str, ...]:
        """The named scale tiers this spec accepts (``generate("large")``)."""
        return tuple(tier for tier, _ in self.scale_tiers)

    def resolve_scale(self, scale: float | str) -> float:
        """Map a tier name or numeric scale to the numeric scale factor."""
        if isinstance(scale, str):
            for tier, value in self.scale_tiers:
                if tier == scale:
                    return value
            raise ValueError(
                f"dataset {self.name!r} has no scale tier {scale!r} "
                f"(known tiers: {', '.join(self.tier_names())})"
            )
        value = float(scale)
        if value <= 0:
            raise ValueError("scale must be positive")
        return value

    def generate(self, scale: float | str = 1.0, seed: int | None = None) -> Database:
        """Generate a correlated database snapshot for this dataset.

        ``scale`` is either a numeric multiplier or one of the spec's named
        tiers (see :meth:`resolve_scale`).
        """
        scale = self.resolve_scale(scale)
        database = self.generator(scale, self.default_seed if seed is None else seed)
        if database.schema.table_names != self.schema.table_names:
            raise RuntimeError(
                f"dataset {self.name!r}: generator produced tables "
                f"{database.schema.table_names} but the spec's schema declares "
                f"{self.schema.table_names}"
            )
        return database

    # -- workload configuration -------------------------------------------
    def training_workload_config(
        self, num_queries: int | None = None, seed: int = 0, **overrides
    ) -> WorkloadConfig:
        """A :class:`WorkloadConfig` following the spec's recommendation.

        The join bound is clamped to what the schema's join graph can
        actually connect, so a recommendation never produces unsatisfiable
        strata on a smaller-than-expected schema.
        """
        recommendation = self.workload
        config = dict(
            num_queries=num_queries
            if num_queries is not None
            else recommendation.num_training_queries,
            max_joins=min(recommendation.max_joins, self.join_graph().max_joins_per_query),
            max_predicates_per_table=recommendation.max_predicates_per_table,
            seed=seed,
        )
        config.update(overrides)
        return WorkloadConfig(**config)

    def evaluation_workload_config(
        self, num_queries: int | None = None, seed: int = 1, **overrides
    ) -> WorkloadConfig:
        """The evaluation twin of :meth:`training_workload_config`."""
        if num_queries is None:
            num_queries = self.workload.num_eval_queries
        return self.training_workload_config(num_queries, seed, **overrides)

    def describe(self) -> str:
        """Human-readable one-paragraph summary (used by listings/examples)."""
        graph = self.join_graph()
        return (
            f"{self.name}: {self.description} "
            f"[{self.topology}; {graph.num_tables} tables, "
            f"{graph.num_join_edges} join edges, "
            f"max {graph.max_joins_per_query} joins/query, "
            f"diameter {graph.diameter}]"
        )
