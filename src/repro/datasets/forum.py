"""Synthetic, correlated forum snowflake schema (deep join chains).

Six tables form a four-level chain with one side branch:

    forums <- threads <- posts <- comments <- votes
                           |
                         users

Foreign keys: ``threads.forum_id -> forums.id``, ``posts.thread_id ->
threads.id``, ``posts.author_id -> users.id``, ``comments.post_id ->
posts.id`` and ``votes.comment_id -> comments.id``.  The join diameter is 4
(``votes`` to ``forums``), so stratified workloads contain chains deeper
than anything a star schema can express — the join topology the paper's
"generalizes to any schema" claim needs evidence for.

The planted join-crossing correlations deliberately span *multiple* join
hops, so they are invisible to per-table statistics and to any estimator
that factorizes the chain:

* a forum's topic shapes the sentiment of posts two joins away
  (``forums.topic_id`` correlates with ``posts.sentiment_id``),
* post authors joined the site before (and usually near) the thread's
  creation year (``threads.created_year`` correlates with
  ``users.join_year``),
* negative posts attract more comments, comments on negative posts are
  flagged more, and flagged comments attract down-votes — a correlation
  chain from ``posts.sentiment_id`` through ``comments.flag_id`` to
  ``votes.vote_type_id`` spanning three levels,
* pinned threads accumulate several times the usual number of posts
  (fan-out skew conditioned on a parent attribute).

Every conditional draw leaks a small uniform fraction, keeping mismatched
attribute combinations non-empty.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets._generation import (
    ColumnBlockWriter,
    chunk_spans,
    chunk_stream_label,
    fanout_counts,
    sliced_choice,
    zipf_choice,
)
from repro.datasets.registry import register_dataset
from repro.datasets.spec import DatasetSpec, WorkloadRecommendation
from repro.db.schema import ColumnSchema, ForeignKey, Schema, TableSchema
from repro.db.table import Database, Table
from repro.utils.rng import spawn_rng

__all__ = ["ForumConfig", "forum_schema", "generate_forum", "FORUM_SPEC"]

_MIN_YEAR = 2005
_MAX_YEAR = 2024
_NUM_TOPICS = 12
_NUM_SENTIMENTS = 5  # 1 = very negative .. 5 = very positive
_NUM_FLAGS = 5  # 1 = ordinary .. 5 = removed
_NUM_VOTE_TYPES = 4  # 1 = up, 2 = down, 3 = funny, 4 = report
_NUM_ERA_BUCKETS = 5


@dataclass(frozen=True)
class ForumConfig:
    """Size and skew knobs of the forum generator.

    Defaults produce roughly 150k rows across the chain; ``scale`` multiplies
    the user and thread populations (and transitively every deeper level).

    ``chunk_rows`` switches the deep fan-out generators (posts, comments,
    votes) to streaming chunked emission over spans of that many *parent*
    rows, each chunk drawn from its own derived RNG stream.  ``None`` keeps
    the historical whole-array draw order bit-identically.  ``users``,
    ``forums`` and ``threads`` stay whole-array: they are dimension-sized,
    and the users table needs a *globally* sorted join-year column (cohort
    ordering) that per-chunk draws cannot produce.
    """

    num_users: int = 5_000
    num_forums: int = 40
    num_threads: int = 4_000
    mean_posts_per_thread: float = 4.0
    mean_comments_per_post: float = 2.2
    mean_votes_per_comment: float = 1.8
    seed: int = 42
    scale: float = 1.0
    chunk_rows: int | None = None

    def __post_init__(self) -> None:
        if min(self.num_users, self.num_forums, self.num_threads) <= 0:
            raise ValueError("all population sizes must be positive")
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.chunk_rows is not None and self.chunk_rows < 1:
            raise ValueError("chunk_rows must be at least 1 when given")

    @property
    def effective_users(self) -> int:
        return max(int(round(self.num_users * self.scale)), 10)

    @property
    def effective_threads(self) -> int:
        return max(int(round(self.num_threads * self.scale)), 10)


def forum_schema() -> Schema:
    """The snowflake chain ``forums <- threads <- posts <- comments <- votes``."""
    users = TableSchema(
        name="users",
        columns=(
            ColumnSchema("id", "primary_key"),
            ColumnSchema("reputation_band"),
            ColumnSchema("join_year"),
        ),
    )
    forums = TableSchema(
        name="forums",
        columns=(
            ColumnSchema("id", "primary_key"),
            ColumnSchema("topic_id"),
            ColumnSchema("language_id"),
        ),
    )
    threads = TableSchema(
        name="threads",
        columns=(
            ColumnSchema("id", "primary_key"),
            ColumnSchema("forum_id", "foreign_key"),
            ColumnSchema("created_year"),
            ColumnSchema("is_pinned"),
        ),
    )
    posts = TableSchema(
        name="posts",
        columns=(
            ColumnSchema("id", "primary_key"),
            ColumnSchema("thread_id", "foreign_key"),
            ColumnSchema("author_id", "foreign_key"),
            ColumnSchema("sentiment_id"),
            ColumnSchema("length_band"),
        ),
    )
    comments = TableSchema(
        name="comments",
        columns=(
            ColumnSchema("id", "primary_key"),
            ColumnSchema("post_id", "foreign_key"),
            ColumnSchema("depth"),
            ColumnSchema("flag_id"),
        ),
    )
    votes = TableSchema(
        name="votes",
        columns=(
            ColumnSchema("id", "primary_key"),
            ColumnSchema("comment_id", "foreign_key"),
            ColumnSchema("vote_type_id"),
            ColumnSchema("weight_band"),
        ),
    )
    foreign_keys = (
        ForeignKey("threads", "forum_id", "forums", "id"),
        ForeignKey("posts", "thread_id", "threads", "id"),
        ForeignKey("posts", "author_id", "users", "id"),
        ForeignKey("comments", "post_id", "posts", "id"),
        ForeignKey("votes", "comment_id", "comments", "id"),
    )
    return Schema(
        tables=(users, forums, threads, posts, comments, votes),
        foreign_keys=foreign_keys,
    )


def generate_forum(config: ForumConfig | None = None) -> Database:
    """Generate a synthetic forum :class:`~repro.db.table.Database`."""
    config = config if config is not None else ForumConfig()
    schema = forum_schema()

    users = _generate_users(config, schema)
    forums = _generate_forums(config, schema)
    threads = _generate_threads(config, schema, forums)
    posts = _generate_posts(config, schema, forums, threads, users)
    comments = _generate_comments(config, schema, posts)
    votes = _generate_votes(config, schema, posts, comments)
    return Database(
        schema,
        {
            "users": users,
            "forums": forums,
            "threads": threads,
            "posts": posts,
            "comments": comments,
            "votes": votes,
        },
    )


def _generate_users(config: ForumConfig, schema: Schema) -> Table:
    rng = spawn_rng(config.seed, "users")
    num_users = config.effective_users
    # Join years skew recent; sorting them makes user id ranges correspond to
    # cohort eras, so era-conditioned author draws are slice draws.
    fractions = np.sort(rng.beta(2.5, 1.2, size=num_users))
    join_year = _MIN_YEAR + np.round(fractions * (_MAX_YEAR - _MIN_YEAR)).astype(np.int64)
    # Within-table correlation: long-tenured users carry high reputation.
    tenure = _MAX_YEAR - join_year
    base_band = np.clip(1 + tenure // 4 + rng.integers(-1, 2, size=num_users), 1, 6)
    noisy = rng.random(num_users) < 0.15
    reputation_band = np.where(noisy, rng.integers(1, 7, size=num_users), base_band)
    return Table(
        schema.table("users"),
        {
            "id": np.arange(1, num_users + 1, dtype=np.int64),
            "reputation_band": reputation_band.astype(np.int64),
            "join_year": join_year,
        },
    )


def _generate_forums(config: ForumConfig, schema: Schema) -> Table:
    rng = spawn_rng(config.seed, "forums")
    num_forums = config.num_forums
    topic_id = zipf_choice(rng, _NUM_TOPICS, num_forums, exponent=0.8)
    # Within-table correlation: a topic's forums cluster around one language.
    base_language = 1 + (topic_id * 3) % 10
    noisy = rng.random(num_forums) < 0.25
    language_id = np.where(noisy, rng.integers(1, 11, size=num_forums), base_language)
    return Table(
        schema.table("forums"),
        {
            "id": np.arange(1, num_forums + 1, dtype=np.int64),
            "topic_id": topic_id,
            "language_id": language_id.astype(np.int64),
        },
    )


def _generate_threads(config: ForumConfig, schema: Schema, forums: Table) -> Table:
    rng = spawn_rng(config.seed, "threads")
    num_threads = config.effective_threads
    forum_id = zipf_choice(rng, forums.num_rows, num_threads, exponent=1.05)
    fractions = rng.beta(3.0, 1.3, size=num_threads)
    created_year = _MIN_YEAR + np.round(fractions * (_MAX_YEAR - _MIN_YEAR)).astype(np.int64)
    is_pinned = (rng.random(num_threads) < 0.05).astype(np.int64)
    return Table(
        schema.table("threads"),
        {
            "id": np.arange(1, num_threads + 1, dtype=np.int64),
            "forum_id": forum_id,
            "created_year": created_year,
            "is_pinned": is_pinned,
        },
    )


def _generate_posts(
    config: ForumConfig, schema: Schema, forums: Table, threads: Table, users: Table
) -> Table:
    thread_ids = threads.column("id")
    created_year = threads.column("created_year")
    is_pinned = threads.column("is_pinned")
    forum_topic = forums.column("topic_id")[threads.column("forum_id") - 1]

    writer = ColumnBlockWriter(
        ("id", "thread_id", "author_id", "sentiment_id", "length_band")
    )
    for index, start, stop in chunk_spans(threads.num_rows, config.chunk_rows):
        rng = spawn_rng(config.seed, chunk_stream_label("posts", config.chunk_rows, index))
        span_year = created_year[start:stop]
        # Fan-out: pinned and recent threads accumulate more posts.
        recency = 0.6 + 0.8 * (span_year - _MIN_YEAR) / (_MAX_YEAR - _MIN_YEAR)
        pinned_factor = np.where(is_pinned[start:stop] == 1, 3.0, 1.0)
        counts = fanout_counts(rng, config.mean_posts_per_thread * recency * pinned_factor)
        thread_id = np.repeat(thread_ids[start:stop], counts)
        total = len(thread_id)
        if total == 0:
            continue

        row_topic = np.repeat(forum_topic[start:stop], counts)
        row_year = np.repeat(span_year, counts)

        # Join-crossing correlation (2 hops): the forum's topic sets the
        # sentiment mix of its posts — contentious topics skew negative.
        # Topic t's sentiment distribution peaks at 1 + (t mod 5), leaky 20%.
        peak = 1 + (row_topic % _NUM_SENTIMENTS)
        offsets = rng.choice(
            np.arange(-4, 5), size=total, p=_triangular_weights(half_width=4)
        )
        sentiment = np.clip(peak + offsets, 1, _NUM_SENTIMENTS)
        leak = rng.random(total) < 0.2
        sentiment = np.where(leak, rng.integers(1, _NUM_SENTIMENTS + 1, size=total), sentiment)

        # Join-crossing correlation (chain branch): authors come from cohorts
        # that joined before (usually near) the thread's creation year.  User ids
        # are cohort-ordered, so this is a leaky slice draw over the id space.
        era = np.clip(
            ((row_year - _MIN_YEAR) * _NUM_ERA_BUCKETS) // (_MAX_YEAR - _MIN_YEAR + 1),
            0,
            _NUM_ERA_BUCKETS - 1,
        )
        author_id = sliced_choice(
            rng, users.num_rows, era, _NUM_ERA_BUCKETS, leak=0.15, exponent=1.1
        )

        # Within-table correlation: negative posts run long (rants).
        base_length = np.clip(5 - sentiment + rng.integers(-1, 2, size=total), 1, 4)
        noisy = rng.random(total) < 0.2
        length_band = np.where(noisy, rng.integers(1, 5, size=total), base_length)
        offset = writer.num_rows
        writer.append(
            {
                "id": np.arange(offset + 1, offset + total + 1, dtype=np.int64),
                "thread_id": thread_id,
                "author_id": author_id.astype(np.int64),
                "sentiment_id": sentiment.astype(np.int64),
                "length_band": length_band.astype(np.int64),
            }
        )
    return Table(schema.table("posts"), writer.finalize())


def _generate_comments(config: ForumConfig, schema: Schema, posts: Table) -> Table:
    post_ids = posts.column("id")
    sentiment = posts.column("sentiment_id")
    writer = ColumnBlockWriter(("id", "post_id", "depth", "flag_id"))
    for index, start, stop in chunk_spans(posts.num_rows, config.chunk_rows):
        rng = spawn_rng(
            config.seed, chunk_stream_label("comments", config.chunk_rows, index)
        )
        span_sentiment = sentiment[start:stop]
        # Controversy fan-out: strongly negative posts attract the most comments.
        controversy = 1.0 + 0.8 * (3.0 - span_sentiment) / 2.0
        counts = fanout_counts(
            rng, config.mean_comments_per_post * np.clip(controversy, 0.4, None)
        )
        post_id = np.repeat(post_ids[start:stop], counts)
        total = len(post_id)
        if total == 0:
            continue

        depth = np.clip(1 + rng.geometric(0.55, size=total), 1, 6)
        # Join-crossing correlation (1 hop, feeds the 3-hop chain): comments on
        # negative posts get flagged; ordinary posts stay at flag 1-2.
        row_sentiment = np.repeat(span_sentiment, counts)
        base_flag = np.clip(
            _NUM_FLAGS + 1 - row_sentiment + rng.integers(-2, 1, size=total), 1, _NUM_FLAGS
        )
        leak = rng.random(total) < 0.15
        flag_id = np.where(leak, rng.integers(1, _NUM_FLAGS + 1, size=total), base_flag)
        offset = writer.num_rows
        writer.append(
            {
                "id": np.arange(offset + 1, offset + total + 1, dtype=np.int64),
                "post_id": post_id,
                "depth": depth.astype(np.int64),
                "flag_id": flag_id.astype(np.int64),
            }
        )
    return Table(schema.table("comments"), writer.finalize())


def _generate_votes(
    config: ForumConfig, schema: Schema, posts: Table, comments: Table
) -> Table:
    comment_ids = comments.column("id")
    depth = comments.column("depth")
    flag_id = comments.column("flag_id")
    writer = ColumnBlockWriter(("id", "comment_id", "vote_type_id", "weight_band"))
    for index, start, stop in chunk_spans(comments.num_rows, config.chunk_rows):
        rng = spawn_rng(config.seed, chunk_stream_label("votes", config.chunk_rows, index))
        # Shallow comments are seen (and voted on) more.
        visibility = np.clip(1.6 - 0.2 * depth[start:stop], 0.3, None)
        counts = fanout_counts(rng, config.mean_votes_per_comment * visibility)
        comment_id = np.repeat(comment_ids[start:stop], counts)
        total = len(comment_id)
        if total == 0:
            continue

        # Join-crossing correlation (3 hops from posts.sentiment_id via
        # comments.flag_id): flagged comments draw down-votes and reports,
        # ordinary comments draw up-votes.
        row_flag = np.repeat(flag_id[start:stop], counts)
        source = rng.random(total)
        vote_type = np.where(
            row_flag >= 4,
            np.where(source < 0.55, 2, np.where(source < 0.85, 4, 1)),
            np.where(source < 0.65, 1, np.where(source < 0.85, 3, 2)),
        )
        leak = rng.random(total) < 0.1
        vote_type = np.where(leak, rng.integers(1, _NUM_VOTE_TYPES + 1, size=total), vote_type)
        # Within-table correlation: reports carry the most moderation weight.
        base_weight = np.where(vote_type == 4, 3, np.where(vote_type == 2, 2, 1))
        noisy = rng.random(total) < 0.1
        weight_band = np.where(noisy, rng.integers(1, 4, size=total), base_weight)
        offset = writer.num_rows
        writer.append(
            {
                "id": np.arange(offset + 1, offset + total + 1, dtype=np.int64),
                "comment_id": comment_id,
                "vote_type_id": vote_type.astype(np.int64),
                "weight_band": weight_band.astype(np.int64),
            }
        )
    return Table(schema.table("votes"), writer.finalize())


def _triangular_weights(half_width: int) -> np.ndarray:
    """Symmetric triangular probabilities over ``[-half_width, half_width]``."""
    raw = (half_width + 1 - np.abs(np.arange(-half_width, half_width + 1))).astype(np.float64)
    return raw / raw.sum()


#: Scales at or above this switch the spec generator to streaming chunked
#: emission; below it the historical whole-array draw order keeps existing
#: seeded snapshots bit-identical.
_STREAMING_SCALE = 8.0
_STREAMING_CHUNK_ROWS = 16_384


def _generate_for_spec(scale: float, seed: int) -> Database:
    chunk_rows = _STREAMING_CHUNK_ROWS if scale >= _STREAMING_SCALE else None
    return generate_forum(ForumConfig(scale=scale, seed=seed, chunk_rows=chunk_rows))


#: The registered forum snowflake: a diameter-4 join chain whose planted
#: correlations span up to three join hops.  At the ``large`` tier the
#: deepest level (``votes``) crosses one million rows.
FORUM_SPEC = register_dataset(
    DatasetSpec(
        name="forum",
        description=(
            "forum snowflake: forums<-threads<-posts<-comments<-votes chain "
            "(plus users) with sentiment/flag/vote correlations spanning 3 hops"
        ),
        topology="snowflake",
        schema_factory=forum_schema,
        generator=_generate_for_spec,
        default_seed=42,
        workload=WorkloadRecommendation(
            max_joins=3,
            scale_max_joins=5,
            num_training_queries=3000,
            num_eval_queries=500,
        ),
        scale_tiers=(("small", 0.25), ("medium", 1.0), ("large", 16.0)),
    )
)
