"""Synthetic, correlated retail star schema (TPC-H/DS-flavoured).

A single wide fact table ``sales`` references four skewed dimensions:

* ``customers`` (segment_id, region_id, age_band)
* ``products`` (category_id, brand_id, price_band)
* ``stores`` (region_id, format_id)
* ``calendar`` (month, week, is_holiday)

Compared to the IMDb schema — where the hub ``title`` is the *dimension* and
the satellites are facts — the hub here is the fact table, so every join
fans *in*: dimension predicates restrict huge slices of ``sales``, and the
fan-out per dimension row is Zipf-skewed (a few whale customers and hit
products account for most rows).  This is the join topology the IMDb schema
cannot produce, and it exercises the estimator on dimension-to-dimension
correlations that only exist *through* the fact table:

* premium customer segments buy high-price-band products
  (``customers.segment_id`` correlates with ``products.price_band`` across
  two joins),
* customers shop in stores of their own region
  (``customers.region_id`` correlates with ``stores.region_id``),
* product categories are seasonal (``products.category_id`` correlates
  with ``calendar.month``),
* within the fact table, the sales channel tracks the buyer's age band and
  the quantity band is inversely related to the product's price band.

All conditional draws are leaky, so mismatched combinations keep small
non-zero cardinalities — the regime where independence assumptions fail by
orders of magnitude rather than the query being empty.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets._generation import (
    ColumnBlockWriter,
    chunk_spans,
    chunk_stream_label,
    fanout_counts,
    sliced_choice,
    zipf_choice,
)
from repro.datasets.registry import register_dataset
from repro.datasets.spec import DatasetSpec, WorkloadRecommendation
from repro.db.schema import ColumnSchema, ForeignKey, Schema, TableSchema
from repro.db.table import Database, Table
from repro.utils.rng import spawn_rng

__all__ = ["RetailConfig", "retail_schema", "generate_retail", "RETAIL_SPEC"]

_NUM_SEGMENTS = 5
_NUM_REGIONS = 8
_NUM_CATEGORIES = 12
_NUM_PRICE_BANDS = 5
_DAYS_PER_MONTH = 30
_NUM_MONTHS = 12


@dataclass(frozen=True)
class RetailConfig:
    """Size and skew knobs of the retail generator.

    The defaults produce roughly 45k rows; ``scale`` multiplies the customer
    population and with it the fact table, leaving distributions untouched.

    ``chunk_rows`` switches the customer and sales generators to streaming
    chunked emission: each chunk of that many *customers* is drawn from its
    own derived RNG stream and appended into growable column storage, so the
    per-chunk intermediates (not the finished table) bound peak memory.
    ``None`` keeps the historical whole-array draw order and is bit-identical
    to pre-streaming output; chunked output is deterministic for a fixed
    ``(scale, seed, chunk_rows)`` but is a *different* (equally valid) sample.
    """

    num_customers: int = 4_000
    num_products: int = 1_500
    num_stores: int = 240
    mean_sales_per_customer: float = 8.0
    seed: int = 42
    scale: float = 1.0
    chunk_rows: int | None = None

    def __post_init__(self) -> None:
        if min(self.num_customers, self.num_products) <= 0:
            raise ValueError("all population sizes must be positive")
        if self.num_stores < _NUM_REGIONS:
            # Every region needs at least one store or the region-conditioned
            # store draws in the fact table would starve.
            raise ValueError(f"num_stores must be >= {_NUM_REGIONS} (one per region)")
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.chunk_rows is not None and self.chunk_rows < 1:
            raise ValueError("chunk_rows must be at least 1 when given")

    @property
    def effective_customers(self) -> int:
        return max(int(round(self.num_customers * self.scale)), 10)

    @property
    def num_days(self) -> int:
        return _DAYS_PER_MONTH * _NUM_MONTHS


def retail_schema() -> Schema:
    """The star schema: ``sales`` fanning out to four dimensions."""
    customers = TableSchema(
        name="customers",
        columns=(
            ColumnSchema("id", "primary_key"),
            ColumnSchema("segment_id"),
            ColumnSchema("region_id"),
            ColumnSchema("age_band"),
        ),
    )
    products = TableSchema(
        name="products",
        columns=(
            ColumnSchema("id", "primary_key"),
            ColumnSchema("category_id"),
            ColumnSchema("brand_id"),
            ColumnSchema("price_band"),
        ),
    )
    stores = TableSchema(
        name="stores",
        columns=(
            ColumnSchema("id", "primary_key"),
            ColumnSchema("region_id"),
            ColumnSchema("format_id"),
        ),
    )
    calendar = TableSchema(
        name="calendar",
        columns=(
            ColumnSchema("id", "primary_key"),
            ColumnSchema("month"),
            ColumnSchema("week"),
            ColumnSchema("is_holiday"),
        ),
    )
    sales = TableSchema(
        name="sales",
        columns=(
            ColumnSchema("id", "primary_key"),
            ColumnSchema("customer_id", "foreign_key"),
            ColumnSchema("product_id", "foreign_key"),
            ColumnSchema("store_id", "foreign_key"),
            ColumnSchema("date_id", "foreign_key"),
            ColumnSchema("channel_id"),
            ColumnSchema("quantity_band"),
        ),
    )
    foreign_keys = (
        ForeignKey("sales", "customer_id", "customers", "id"),
        ForeignKey("sales", "product_id", "products", "id"),
        ForeignKey("sales", "store_id", "stores", "id"),
        ForeignKey("sales", "date_id", "calendar", "id"),
    )
    return Schema(tables=(customers, products, stores, calendar, sales), foreign_keys=foreign_keys)


def generate_retail(config: RetailConfig | None = None) -> Database:
    """Generate a synthetic retail :class:`~repro.db.table.Database`."""
    config = config if config is not None else RetailConfig()
    schema = retail_schema()
    num_customers = config.effective_customers

    customers = _generate_customers(config, schema, num_customers)
    products = _generate_products(config, schema)
    stores = _generate_stores(config, schema)
    calendar = _generate_calendar(config, schema)
    sales = _generate_sales(config, schema, customers, products, stores)
    return Database(
        schema,
        {
            "customers": customers,
            "products": products,
            "stores": stores,
            "calendar": calendar,
            "sales": sales,
        },
    )


def _generate_customers(config: RetailConfig, schema: Schema, num_customers: int) -> Table:
    writer = ColumnBlockWriter(("id", "segment_id", "region_id", "age_band"))
    for index, start, stop in chunk_spans(num_customers, config.chunk_rows):
        rng = spawn_rng(
            config.seed, chunk_stream_label("customers", config.chunk_rows, index)
        )
        rows = stop - start
        # Segments skew towards the mass market (segment 5 = budget, 1 = premium).
        segment_id = _NUM_SEGMENTS + 1 - zipf_choice(rng, _NUM_SEGMENTS, rows, exponent=0.8)
        region_id = zipf_choice(rng, _NUM_REGIONS, rows, exponent=0.9)
        # Within-table correlation: premium segments skew older.
        base_band = np.clip(7 - segment_id + rng.integers(-1, 2, size=rows), 1, 6)
        noisy = rng.random(rows) < 0.2
        age_band = np.where(noisy, rng.integers(1, 7, size=rows), base_band)
        writer.append(
            {
                "id": np.arange(start + 1, stop + 1, dtype=np.int64),
                "segment_id": segment_id.astype(np.int64),
                "region_id": region_id,
                "age_band": age_band.astype(np.int64),
            }
        )
    return Table(schema.table("customers"), writer.finalize())


def _generate_products(config: RetailConfig, schema: Schema) -> Table:
    rng = spawn_rng(config.seed, "products")
    num_products = config.num_products
    product_ids = np.arange(1, num_products + 1, dtype=np.int64)
    # Price bands partition the id space (band b = ids in slice b), which
    # makes segment-conditioned product draws in the fact table a slice draw.
    price_band = 1 + ((product_ids - 1) * _NUM_PRICE_BANDS) // num_products
    category_id = zipf_choice(rng, _NUM_CATEGORIES, num_products, exponent=0.7)
    # Within-table correlation: brands live inside one category (with noise).
    num_brands = max(num_products // 12, _NUM_CATEGORIES)
    base_brand = 1 + (category_id - 1 + _NUM_CATEGORIES * rng.integers(0, max(num_brands // _NUM_CATEGORIES, 1), size=num_products)) % num_brands
    noisy = rng.random(num_products) < 0.1
    brand_id = np.where(noisy, zipf_choice(rng, num_brands, num_products, exponent=1.0), base_brand)
    return Table(
        schema.table("products"),
        {
            "id": product_ids,
            "category_id": category_id,
            "brand_id": brand_id.astype(np.int64),
            "price_band": price_band.astype(np.int64),
        },
    )


def _generate_stores(config: RetailConfig, schema: Schema) -> Table:
    rng = spawn_rng(config.seed, "stores")
    num_stores = config.num_stores
    # Regions are assigned round-robin with skewed extras so that every
    # region has at least one store (region-conditioned draws never starve).
    region_id = np.empty(num_stores, dtype=np.int64)
    region_id[:_NUM_REGIONS] = np.arange(1, _NUM_REGIONS + 1)
    if num_stores > _NUM_REGIONS:
        region_id[_NUM_REGIONS:] = zipf_choice(
            rng, _NUM_REGIONS, num_stores - _NUM_REGIONS, exponent=0.9
        )
    # Within-table correlation: dense regions get more small-format stores.
    base_format = 1 + (region_id % 2) + (rng.random(num_stores) < 0.3).astype(np.int64)
    format_id = np.clip(base_format, 1, 4)
    return Table(
        schema.table("stores"),
        {
            "id": np.arange(1, num_stores + 1, dtype=np.int64),
            "region_id": region_id,
            "format_id": format_id.astype(np.int64),
        },
    )


def _generate_calendar(config: RetailConfig, schema: Schema) -> Table:
    rng = spawn_rng(config.seed, "calendar")
    num_days = config.num_days
    day_ids = np.arange(1, num_days + 1, dtype=np.int64)
    month = 1 + (day_ids - 1) // _DAYS_PER_MONTH
    week = 1 + (day_ids - 1) // 7
    # Holidays cluster in summer and December (correlated with month).
    holiday_probability = np.where(np.isin(month, (7, 12)), 0.25, 0.04)
    is_holiday = (rng.random(num_days) < holiday_probability).astype(np.int64)
    return Table(
        schema.table("calendar"),
        {"id": day_ids, "month": month.astype(np.int64), "week": week.astype(np.int64), "is_holiday": is_holiday},
    )


def _generate_sales(
    config: RetailConfig,
    schema: Schema,
    customers: Table,
    products: Table,
    stores: Table,
) -> Table:
    num_customers = customers.num_rows
    # Zipf-skewed per-customer purchase counts: whale customers dominate the
    # fact table (the "wide fan-out" half of the star's difficulty).  The
    # normalized rank factors span the full population (O(customers) memory,
    # never O(sales)) so chunked and whole-array emission share one fan-out
    # profile.
    rank_factor = 1.0 / np.arange(1, num_customers + 1, dtype=np.float64) ** 0.8
    rank_factor *= num_customers / rank_factor.sum()

    # Region -> store-id pools are deterministic; hoisted out of the chunk loop.
    store_regions = stores.column("region_id")
    store_ids_by_region = [
        np.flatnonzero(store_regions == region_index) + 1
        for region_index in range(1, _NUM_REGIONS + 1)
    ]

    all_customer_ids = customers.column("id")
    all_segments = customers.column("segment_id")
    all_regions = customers.column("region_id")
    all_age_bands = customers.column("age_band")
    product_category = products.column("category_id")
    product_price_band = products.column("price_band")

    # Chunks span *customers*; with a mean fan-out of ``mean_sales_per_customer``
    # a chunk emits roughly that many times ``chunk_rows`` sales, so per-chunk
    # intermediates stay proportional to the chunk, not the fact table.
    writer = ColumnBlockWriter(
        (
            "id",
            "customer_id",
            "product_id",
            "store_id",
            "date_id",
            "channel_id",
            "quantity_band",
        )
    )
    for index, start, stop in chunk_spans(num_customers, config.chunk_rows):
        rng = spawn_rng(config.seed, chunk_stream_label("sales", config.chunk_rows, index))
        counts = fanout_counts(
            rng, config.mean_sales_per_customer * rank_factor[start:stop]
        )
        customer_id = np.repeat(all_customer_ids[start:stop], counts)
        total = len(customer_id)
        if total == 0:
            continue

        segment = all_segments[customer_id - 1]
        region = all_regions[customer_id - 1]
        age_band = all_age_bands[customer_id - 1]

        # Join-crossing correlation #1: premium segments (low segment_id) buy
        # high-price-band products.  Price bands partition the product id
        # space, so this is a leaky slice draw keyed by the buyer's segment.
        band_slice = np.clip(_NUM_PRICE_BANDS - segment, 0, _NUM_PRICE_BANDS - 1)
        product_id = sliced_choice(
            rng, config.num_products, band_slice, _NUM_PRICE_BANDS, leak=0.12, exponent=1.05
        )

        # Join-crossing correlation #2: customers shop in stores of their region.
        store_id = zipf_choice(rng, stores.num_rows, total, exponent=1.0)
        local = rng.random(total) < 0.9
        for region_index in range(1, _NUM_REGIONS + 1):
            mask = local & (region == region_index)
            size = int(mask.sum())
            if size:
                pool = store_ids_by_region[region_index - 1]
                within = zipf_choice(rng, len(pool), size, exponent=1.0)
                store_id[mask] = pool[within - 1]

        # Join-crossing correlation #3: categories are seasonal — each category
        # peaks in one month; 70% of a product's sales land in its peak window.
        category = product_category[product_id - 1]
        peak_month = 1 + (category * 5) % _NUM_MONTHS
        date_id = rng.integers(1, config.num_days + 1, size=total)
        seasonal = rng.random(total) < 0.7
        if seasonal.any():
            month_start = (peak_month[seasonal] - 1) * _DAYS_PER_MONTH
            date_id[seasonal] = month_start + rng.integers(
                1, _DAYS_PER_MONTH + 1, size=int(seasonal.sum())
            )

        # Within-fact correlations: young buyers use the online channel; cheap
        # products sell in bulk.
        channel_noise = rng.random(total)
        channel_id = np.where(
            age_band <= 2,
            np.where(channel_noise < 0.75, 1, 2),
            np.where(channel_noise < 0.55, 3, np.where(channel_noise < 0.8, 2, 1)),
        )
        price_band = product_price_band[product_id - 1]
        quantity_band = np.clip(
            5 - price_band + rng.integers(-1, 2, size=total), 1, 4
        )
        offset = writer.num_rows
        writer.append(
            {
                "id": np.arange(offset + 1, offset + total + 1, dtype=np.int64),
                "customer_id": customer_id.astype(np.int64),
                "product_id": product_id.astype(np.int64),
                "store_id": store_id.astype(np.int64),
                "date_id": date_id.astype(np.int64),
                "channel_id": channel_id.astype(np.int64),
                "quantity_band": quantity_band.astype(np.int64),
            }
        )
    return Table(schema.table("sales"), writer.finalize())


#: Scales at or above this switch the spec generator to streaming chunked
#: emission (bounded per-chunk intermediates); below it the historical
#: whole-array draw order is kept so existing seeded snapshots stay
#: bit-identical.
_STREAMING_SCALE = 8.0
_STREAMING_CHUNK_ROWS = 16_384


def _generate_for_spec(scale: float, seed: int) -> Database:
    chunk_rows = _STREAMING_CHUNK_ROWS if scale >= _STREAMING_SCALE else None
    return generate_retail(RetailConfig(scale=scale, seed=seed, chunk_rows=chunk_rows))


#: The registered retail star: fact-hub topology, Zipf fan-outs, seasonal and
#: segment-driven dimension-to-dimension correlations through ``sales``.
#: The ``large`` tier crosses the million-fact-row line: 34 x 4000 customers
#: at a mean fan-out of 8 emit ~1.09M ``sales`` rows via streaming chunks.
RETAIL_SPEC = register_dataset(
    DatasetSpec(
        name="retail",
        description=(
            "TPC-style retail star: one wide 'sales' fact over four skewed "
            "dimensions with segment/region/season correlations through the fact"
        ),
        topology="star",
        schema_factory=retail_schema,
        generator=_generate_for_spec,
        default_seed=42,
        workload=WorkloadRecommendation(
            max_joins=2,
            scale_max_joins=4,
            num_training_queries=3000,
            num_eval_queries=500,
        ),
        scale_tiers=(("small", 0.25), ("medium", 1.0), ("large", 34.0)),
    )
)
