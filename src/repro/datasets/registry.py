"""The dataset registry.

Registered :class:`~repro.datasets.spec.DatasetSpec` instances are the only
way the rest of the codebase discovers datasets; nothing outside
:mod:`repro.datasets` may assume a particular schema.  The built-in datasets
(IMDb star, retail star, forum snowflake) are registered lazily on first
lookup, so both ``import repro.datasets`` and a direct
``from repro.datasets.registry import get_dataset`` see them.
"""

from __future__ import annotations

import importlib
import threading

from repro.datasets.spec import DatasetSpec

__all__ = ["register_dataset", "get_dataset", "dataset_names", "registered_datasets"]

_BUILTIN_MODULES = (
    "repro.datasets.imdb",
    "repro.datasets.retail",
    "repro.datasets.forum",
)

_registry: dict[str, DatasetSpec] = {}
# Reentrant: _ensure_builtins holds the lock while importing the built-in
# modules, whose import-time register_dataset calls take it again.
_lock = threading.RLock()
_builtins_loaded = False


def _ensure_builtins() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    with _lock:
        if _builtins_loaded:
            return
        for module_name in _BUILTIN_MODULES:
            # Importing a dataset module triggers its register_dataset call.
            importlib.import_module(module_name)
        _builtins_loaded = True


def register_dataset(spec: DatasetSpec, replace: bool = False) -> DatasetSpec:
    """Register ``spec`` under ``spec.name``; returns the spec for chaining.

    Re-registering the same spec object is a no-op (modules import once but
    defensively call this); registering a *different* spec under an existing
    name requires ``replace=True``.  Safe to call from any thread.
    """
    with _lock:
        existing = _registry.get(spec.name)
        if existing is not None and existing is not spec and not replace:
            raise ValueError(f"dataset {spec.name!r} is already registered")
        _registry[spec.name] = spec
    return spec


def get_dataset(name: str) -> DatasetSpec:
    """Look up a registered dataset spec by name."""
    _ensure_builtins()
    with _lock:
        try:
            return _registry[name]
        except KeyError:
            raise KeyError(
                f"unknown dataset {name!r}; registered: {', '.join(sorted(_registry))}"
            ) from None


def dataset_names() -> tuple[str, ...]:
    """Names of all registered datasets, in registration order."""
    _ensure_builtins()
    with _lock:
        return tuple(_registry)


def registered_datasets() -> tuple[DatasetSpec, ...]:
    """All registered dataset specs, in registration order."""
    _ensure_builtins()
    with _lock:
        return tuple(_registry.values())
