"""Shared numeric helpers for the synthetic dataset generators.

Every registered dataset plants the same *kinds* of structure — Zipf-skewed
categorical values, Poisson fan-outs around attribute-dependent means, and
leaky conditional draws that create join-crossing correlations — so the
primitives live here and the per-dataset modules only express the shapes.

The second half of the module is the streaming-emission machinery of the
``scale="large"`` tier: generators produce their big (fan-out) tables as a
sequence of row *chunks*, each drawn from its own deterministically derived
RNG stream and appended into a :class:`ColumnBlockWriter`, so peak memory
stays bounded by the finished table plus one chunk of intermediates instead
of several whole-table temporaries.  ``chunk_rows=None`` yields a single
chunk whose RNG stream label equals the legacy per-table label, which makes
the un-chunked path bit-identical to the historical generators.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

import numpy as np

__all__ = [
    "zipf_choice",
    "fanout_counts",
    "sliced_choice",
    "chunk_spans",
    "chunk_stream_label",
    "ColumnBlockWriter",
]


def zipf_choice(
    rng: np.random.Generator, population: int, count: int, exponent: float = 1.1
) -> np.ndarray:
    """Draw ``count`` ids from ``[1, population]`` with a Zipf-like skew."""
    ranks = np.arange(1, population + 1, dtype=np.float64)
    weights = 1.0 / ranks**exponent
    weights /= weights.sum()
    return rng.choice(population, size=count, p=weights).astype(np.int64) + 1


def fanout_counts(rng: np.random.Generator, means: np.ndarray) -> np.ndarray:
    """Per-parent fan-out counts with Poisson variation around ``means``."""
    return rng.poisson(np.clip(means, 0.05, None)).astype(np.int64)


def sliced_choice(
    rng: np.random.Generator,
    population: int,
    slice_index: np.ndarray,
    num_slices: int,
    leak: float,
    exponent: float = 1.1,
) -> np.ndarray:
    """Leaky slice-conditional ids: the join-crossing-correlation primitive.

    The id space ``[1, population]`` is split into ``num_slices`` equal
    windows.  Each row draws Zipf-skewed ids from the window named by its
    ``slice_index`` (zero-based), except for a ``leak`` fraction of rows that
    draw from the whole population — so a mismatched slice/attribute
    combination keeps a small non-zero cardinality, which is exactly the
    regime where independence-assuming estimators err by large factors
    instead of the query being discarded as empty.
    """
    count = len(slice_index)
    width = max(population // num_slices, 1)
    ids = zipf_choice(rng, population, count, exponent=exponent)
    conditional = rng.random(count) >= leak
    if conditional.any():
        within = zipf_choice(rng, width, int(conditional.sum()), exponent=exponent)
        ids[conditional] = np.clip(
            slice_index[conditional] * width + within, 1, population
        )
    return ids


# ---------------------------------------------------------------------------
# Streaming chunked emission


def chunk_spans(total: int, chunk_rows: int | None) -> Iterator[tuple[int, int, int]]:
    """Yield ``(index, start, stop)`` spans covering ``range(total)``.

    ``chunk_rows=None`` yields the single span ``(0, 0, total)`` — the legacy
    whole-array path.  Otherwise spans are ``chunk_rows`` long except for a
    shorter tail.  ``total == 0`` yields nothing in either mode.
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    if total == 0:
        return
    if chunk_rows is None:
        yield 0, 0, total
        return
    if chunk_rows < 1:
        raise ValueError("chunk_rows must be at least 1 when given")
    for index, start in enumerate(range(0, total, chunk_rows)):
        yield index, start, min(start + chunk_rows, total)


def chunk_stream_label(name: str, chunk_rows: int | None, index: int) -> str:
    """RNG stream label of one generation chunk.

    The un-chunked path keeps the historical per-table label so its output is
    bit-identical to the pre-streaming generators; chunked mode derives one
    independent stream per chunk, making output deterministic for a fixed
    ``(seed, chunk_rows)`` without any RNG state threading between chunks.
    """
    if chunk_rows is None:
        return name
    return f"{name}[{index}]"


class ColumnBlockWriter:
    """Growable columnar accumulator for streamed table emission.

    Generators append one dict of equal-length column arrays per chunk; at
    ``finalize`` the per-column chunk lists are concatenated once into the
    final contiguous int64 columns.  Peak memory is the finished table plus
    one chunk of intermediates — the generator never holds two whole-table
    temporaries at once.
    """

    def __init__(self, columns: Sequence[str]):
        if not columns:
            raise ValueError("ColumnBlockWriter needs at least one column")
        self._columns = tuple(columns)
        self._chunks: dict[str, list[np.ndarray]] = {name: [] for name in self._columns}
        self._num_rows = 0
        self._finalized = False

    @property
    def column_names(self) -> tuple[str, ...]:
        return self._columns

    @property
    def num_rows(self) -> int:
        """Rows appended so far."""
        return self._num_rows

    def append(self, block: Mapping[str, np.ndarray]) -> None:
        """Append one chunk: equal-length arrays for every declared column."""
        if self._finalized:
            raise RuntimeError("writer already finalized")
        if set(block) != set(self._columns):
            missing = sorted(set(self._columns) - set(block))
            extra = sorted(set(block) - set(self._columns))
            raise ValueError(
                f"chunk columns mismatch (missing {missing!r}, unexpected {extra!r})"
            )
        lengths = {name: len(block[name]) for name in self._columns}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"chunk columns disagree on length: {lengths!r}")
        rows = lengths[self._columns[0]]
        if rows == 0:
            return
        for name in self._columns:
            self._chunks[name].append(np.asarray(block[name]))
        self._num_rows += rows

    def finalize(self) -> dict[str, np.ndarray]:
        """Concatenate all appended chunks into final int64 columns."""
        if self._finalized:
            raise RuntimeError("writer already finalized")
        self._finalized = True
        out: dict[str, np.ndarray] = {}
        for name in self._columns:
            chunks = self._chunks[name]
            if not chunks:
                out[name] = np.empty(0, dtype=np.int64)
            elif len(chunks) == 1:
                out[name] = np.ascontiguousarray(chunks[0], dtype=np.int64)
            else:
                out[name] = np.concatenate(
                    [np.asarray(chunk, dtype=np.int64) for chunk in chunks]
                )
            self._chunks[name] = []
        return out
