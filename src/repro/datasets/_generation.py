"""Shared numeric helpers for the synthetic dataset generators.

Every registered dataset plants the same *kinds* of structure — Zipf-skewed
categorical values, Poisson fan-outs around attribute-dependent means, and
leaky conditional draws that create join-crossing correlations — so the
primitives live here and the per-dataset modules only express the shapes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["zipf_choice", "fanout_counts", "sliced_choice"]


def zipf_choice(
    rng: np.random.Generator, population: int, count: int, exponent: float = 1.1
) -> np.ndarray:
    """Draw ``count`` ids from ``[1, population]`` with a Zipf-like skew."""
    ranks = np.arange(1, population + 1, dtype=np.float64)
    weights = 1.0 / ranks**exponent
    weights /= weights.sum()
    return rng.choice(population, size=count, p=weights).astype(np.int64) + 1


def fanout_counts(rng: np.random.Generator, means: np.ndarray) -> np.ndarray:
    """Per-parent fan-out counts with Poisson variation around ``means``."""
    return rng.poisson(np.clip(means, 0.05, None)).astype(np.int64)


def sliced_choice(
    rng: np.random.Generator,
    population: int,
    slice_index: np.ndarray,
    num_slices: int,
    leak: float,
    exponent: float = 1.1,
) -> np.ndarray:
    """Leaky slice-conditional ids: the join-crossing-correlation primitive.

    The id space ``[1, population]`` is split into ``num_slices`` equal
    windows.  Each row draws Zipf-skewed ids from the window named by its
    ``slice_index`` (zero-based), except for a ``leak`` fraction of rows that
    draw from the whole population — so a mismatched slice/attribute
    combination keeps a small non-zero cardinality, which is exactly the
    regime where independence-assuming estimators err by large factors
    instead of the query being discarded as empty.
    """
    count = len(slice_index)
    width = max(population // num_slices, 1)
    ids = zipf_choice(rng, population, count, exponent=exponent)
    conditional = rng.random(count) >= leak
    if conditional.any():
        within = zipf_choice(rng, width, int(conditional.sum()), exponent=exponent)
        ids[conditional] = np.clip(
            slice_index[conditional] * width + within, 1, population
        )
    return ids
