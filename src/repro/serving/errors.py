"""Typed errors of the serving reliability layer.

Every failure mode a caller of :class:`~repro.serving.service.
EstimationService` (or of the :class:`~repro.serving.registry.ModelRegistry`
lifecycle) can observe has a distinct exception type here, so callers can
program against *categories* — shed the query, retry later, fall back to a
heuristic estimate — instead of string-matching messages.  All of them are
``RuntimeError`` subclasses; :class:`DeadlineExceededError` is additionally a
``TimeoutError`` so generic timeout handling keeps working.
"""

from __future__ import annotations

__all__ = [
    "BatcherCrashedError",
    "DeadlineExceededError",
    "ModelLoadError",
    "ModelPromotionError",
    "ModelUnavailableError",
    "ServiceClosedError",
    "ServiceError",
    "ServiceOverloadedError",
    "SnapshotCorruptionError",
]


class ServiceError(RuntimeError):
    """Base class of every typed serving-layer failure."""


class ServiceClosedError(ServiceError):
    """The service was closed: new requests are rejected and queued requests
    that had not started computing resolve with this error immediately."""


class ServiceOverloadedError(ServiceError):
    """Admission control shed the request: the bounded pending queue is full
    and the overload policy is ``reject`` (or ``degrade`` without a fallback
    estimator to degrade to)."""

    def __init__(self, message: str, queued_queries: int = 0, max_queue_depth: int = 0):
        super().__init__(message)
        self.queued_queries = queued_queries
        self.max_queue_depth = max_queue_depth


class DeadlineExceededError(ServiceError, TimeoutError):
    """The request's deadline expired before an estimate was produced.

    Raised both caller-side (waiting on the batcher outlasted the deadline)
    and batcher-side (an expired request was removed from the queue at
    dequeue time instead of being featurized and inferred as dead work).
    """


class BatcherCrashedError(ServiceError):
    """The batcher thread died outside its per-batch error handling.

    Carries the original traceback text so the failure is diagnosable from
    the caller side; the service's watchdog restarts the thread (queued
    requests survive), and only requests that cannot be replayed resolve
    with this error.
    """

    def __init__(self, message: str, traceback_text: str = ""):
        super().__init__(message)
        self.traceback_text = traceback_text


class ModelUnavailableError(ServiceError):
    """The model cannot answer (circuit breaker open, or inference failed)
    and no fallback estimator is configured to degrade to."""


class ModelLoadError(ServiceError):
    """Loading a model from the registry failed after exhausting retries."""


class SnapshotCorruptionError(ModelLoadError):
    """A stored model snapshot failed checksum verification.

    Not retryable: version directories are immutable, so a checksum mismatch
    means the bytes on disk are wrong, not that the read raced a writer."""


class ModelPromotionError(ServiceError):
    """A freshly published model failed load or validation; ``CURRENT`` was
    rolled back to the previous version."""
