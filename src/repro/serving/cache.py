"""A thread-safe LRU cache of estimation results.

Serving traffic inside a query optimizer is heavily repetitive: the same
(sub)queries are costed over and over across plan enumerations.  The cache
keys on :meth:`repro.db.query.Query.signature` — the order-independent
canonical identity — so semantically identical queries that list their
tables, joins or predicates in different orders share one entry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable

__all__ = ["ResultCache"]

_MISSING = object()


class ResultCache:
    """A bounded LRU mapping of query signatures to cardinality estimates.

    All operations are guarded by one lock: lookups, inserts and the LRU
    reordering are tiny next to a model forward pass, and a single lock keeps
    the hit/miss/eviction counters exactly consistent with the contents.
    """

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, float] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> float | None:
        """The cached estimate for ``key``, recording a hit or a miss."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def peek(self, key: Hashable) -> float | None:
        """Like :meth:`get` but without touching LRU order or counters.

        Used by the batch worker to re-check freshly coalesced queries that a
        concurrent batch may have just answered — those lookups are internal
        plumbing, not request traffic, so they must not skew the hit rate.
        """
        with self._lock:
            value = self._entries.get(key, _MISSING)
            return None if value is _MISSING else value

    def put(self, key: Hashable, value: float) -> None:
        """Insert (or refresh) an estimate, evicting the LRU entry if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            self._entries[key] = value
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (hot-swapping models invalidates all results)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        """One consistent snapshot of size and counters (health endpoints)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return self.peek(key) is not None

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    @property
    def evictions(self) -> int:
        with self._lock:
            return self._evictions
