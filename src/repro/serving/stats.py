"""Service-level observability: an extended :class:`PredictionTiming`.

:class:`ServiceStats` is an immutable snapshot of everything an operator
needs to judge a running :class:`~repro.serving.service.EstimationService`:
the per-stage latency breakdown inherited from
:class:`~repro.core.estimator.PredictionTiming`, plus cache effectiveness,
fallback routing volume, the micro-batch size histogram (how well concurrent
callers coalesce) and the reliability-layer counters — shed / degraded /
expired request volume, circuit-breaker state and open count, batcher
watchdog restarts.  :class:`StatsAccumulator` is its mutable, lock-protected
counterpart the service updates on the hot path.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.estimator import PredictionTiming
from repro.serving.breaker import BreakerState

__all__ = ["ServiceStats", "StatsAccumulator"]


@dataclass(frozen=True)
class ServiceStats(PredictionTiming):
    """A point-in-time snapshot of service counters and latencies.

    ``num_queries`` counts every query answered (cached or computed);
    ``featurization_seconds``/``inference_seconds`` cover only the queries
    that reached the model, and ``fallback_seconds`` the ones routed to the
    traditional estimator.  ``batch_size_histogram`` maps fused micro-batch
    sizes to how often they occurred.

    The reliability counters partition failure handling: ``shed_queries``
    were rejected by admission control (typed
    :class:`~repro.serving.errors.ServiceOverloadedError`), ``degraded_queries``
    were answered by the fallback estimator because the model path was
    unavailable (overload-degrade policy, open circuit breaker, or an
    inference failure) — distinct from ``fallback_queries``, which counts
    deliberate uncertainty routing — and ``expired_queries`` missed their
    deadline and were answered with a typed timeout error instead of being
    featurized as dead work.
    """

    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    fallback_queries: int = 0
    fallback_seconds: float = 0.0
    coalesced_batches: int = 0
    model_swaps: int = 0
    batch_size_histogram: dict[int, int] = field(default_factory=dict)
    #: Peak bytes pinned by the model's inference scratch buffers (summed
    #: over engine replicas; 0 when the model does not expose the pool).
    scratch_high_water_bytes: int = 0
    #: Bytes pinned by the service's reusable featurization buffers (0 when
    #: the model does not support the zero-copy featurize-into path).
    feature_buffer_bytes: int = 0
    #: Peak bytes the featurization arena has ever pinned (survives resets
    #: and model swaps — the stable capacity-planning number).
    feature_arena_high_water_bytes: int = 0
    #: Fraction of featurization micro-batches served entirely from recycled
    #: arena capacity (no allocation); approaches 1.0 once warm.
    feature_arena_reuse_rate: float = 0.0
    #: Fraction of inference runs served entirely from recycled engine
    #: scratch (mean over replicas; 0 when the model hides the pool).
    scratch_reuse_rate: float = 0.0
    #: Queries rejected by admission control (bounded queue, reject policy).
    shed_queries: int = 0
    #: Queries answered by the fallback because the model path was down.
    degraded_queries: int = 0
    #: Queries that expired before compute and got a typed timeout error.
    expired_queries: int = 0
    #: Inference attempts the circuit breaker recorded as failures.
    inference_failures: int = 0
    #: Circuit-breaker state at snapshot time (closed / open / half_open).
    breaker_state: str = BreakerState.CLOSED
    #: How many times the breaker has opened since the service started.
    breaker_opens: int = 0
    #: How many times the watchdog restarted a dead batcher thread.
    batcher_restarts: int = 0

    @property
    def total_seconds(self) -> float:
        return self.featurization_seconds + self.inference_seconds + self.fallback_seconds

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of answered queries served straight from the cache."""
        if self.num_queries == 0:
            return 0.0
        return self.cache_hits / self.num_queries

    @property
    def fallback_rate(self) -> float:
        """Fraction of answered queries routed to the fallback estimator."""
        if self.num_queries == 0:
            return 0.0
        return self.fallback_queries / self.num_queries

    @property
    def mean_batch_size(self) -> float:
        """Average fused micro-batch size (1.0 means no coalescing happened)."""
        total = sum(size * count for size, count in self.batch_size_histogram.items())
        batches = sum(self.batch_size_histogram.values())
        if batches == 0:
            return 0.0
        return total / batches

    def describe(self) -> str:
        """A one-paragraph human-readable summary (examples, smoke logs)."""
        summary = (
            f"{self.num_queries} queries: {self.cache_hits} cache hits "
            f"({100.0 * self.cache_hit_rate:.1f}%), {self.fallback_queries} fallbacks "
            f"({100.0 * self.fallback_rate:.1f}%), {self.coalesced_batches} fused batches "
            f"(mean size {self.mean_batch_size:.1f}), "
            f"featurize {1000.0 * self.featurization_seconds:.2f} ms, "
            f"infer {1000.0 * self.inference_seconds:.2f} ms, "
            f"fallback {1000.0 * self.fallback_seconds:.2f} ms"
        )
        if (
            self.shed_queries
            or self.degraded_queries
            or self.expired_queries
            or self.inference_failures
            or self.batcher_restarts
            or self.breaker_state != BreakerState.CLOSED
        ):
            summary += (
                f"; reliability: breaker {self.breaker_state} "
                f"({self.breaker_opens} opens), {self.shed_queries} shed, "
                f"{self.degraded_queries} degraded, {self.expired_queries} expired, "
                f"{self.inference_failures} inference failures, "
                f"{self.batcher_restarts} batcher restarts"
            )
        return summary


class StatsAccumulator:
    """Thread-safe running counters behind :meth:`EstimationService.stats`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.num_queries = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.fallback_queries = 0
        self.coalesced_batches = 0
        self.model_swaps = 0
        self.featurization_seconds = 0.0
        self.inference_seconds = 0.0
        self.fallback_seconds = 0.0
        self.bitmap_cache_hits = 0
        self.batch_size_histogram: dict[int, int] = {}
        self.shed_queries = 0
        self.degraded_queries = 0
        self.expired_queries = 0
        self.inference_failures = 0
        self.batcher_restarts = 0

    def record_lookups(self, hits: int, misses: int) -> None:
        with self._lock:
            self.num_queries += hits + misses
            self.cache_hits += hits
            self.cache_misses += misses

    def record_batch(
        self,
        batch_size: int,
        featurization_seconds: float,
        inference_seconds: float,
        bitmap_cache_hits: int,
    ) -> None:
        with self._lock:
            self.coalesced_batches += 1
            self.batch_size_histogram[batch_size] = (
                self.batch_size_histogram.get(batch_size, 0) + 1
            )
            self.featurization_seconds += featurization_seconds
            self.inference_seconds += inference_seconds
            self.bitmap_cache_hits += bitmap_cache_hits

    def record_fallback(self, num_queries: int, seconds: float) -> None:
        with self._lock:
            self.fallback_queries += num_queries
            self.fallback_seconds += seconds

    def record_swap(self) -> None:
        with self._lock:
            self.model_swaps += 1

    def record_shed(self, num_queries: int) -> None:
        with self._lock:
            self.shed_queries += num_queries

    def record_degraded(self, num_queries: int, seconds: float) -> None:
        with self._lock:
            self.degraded_queries += num_queries
            self.fallback_seconds += seconds

    def record_expired(self, num_queries: int) -> None:
        with self._lock:
            self.expired_queries += num_queries

    def record_inference_failure(self) -> None:
        with self._lock:
            self.inference_failures += 1

    def record_batcher_restart(self) -> None:
        with self._lock:
            self.batcher_restarts += 1

    def snapshot(
        self,
        cache_evictions: int = 0,
        scratch_high_water_bytes: int = 0,
        feature_buffer_bytes: int = 0,
        feature_arena_high_water_bytes: int = 0,
        feature_arena_reuse_rate: float = 0.0,
        scratch_reuse_rate: float = 0.0,
        breaker_state: str = BreakerState.CLOSED,
        breaker_opens: int = 0,
    ) -> ServiceStats:
        with self._lock:
            return ServiceStats(
                scratch_high_water_bytes=scratch_high_water_bytes,
                feature_buffer_bytes=feature_buffer_bytes,
                feature_arena_high_water_bytes=feature_arena_high_water_bytes,
                feature_arena_reuse_rate=feature_arena_reuse_rate,
                scratch_reuse_rate=scratch_reuse_rate,
                num_queries=self.num_queries,
                featurization_seconds=self.featurization_seconds,
                inference_seconds=self.inference_seconds,
                bitmap_cache_hits=self.bitmap_cache_hits,
                cache_hits=self.cache_hits,
                cache_misses=self.cache_misses,
                cache_evictions=cache_evictions,
                fallback_queries=self.fallback_queries,
                fallback_seconds=self.fallback_seconds,
                coalesced_batches=self.coalesced_batches,
                model_swaps=self.model_swaps,
                batch_size_histogram=dict(self.batch_size_histogram),
                shed_queries=self.shed_queries,
                degraded_queries=self.degraded_queries,
                expired_queries=self.expired_queries,
                inference_failures=self.inference_failures,
                breaker_state=breaker_state,
                breaker_opens=breaker_opens,
                batcher_restarts=self.batcher_restarts,
            )
