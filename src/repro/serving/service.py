"""The micro-batched, cache-fronted, fault-tolerant estimation service.

:class:`EstimationService` is the traffic-facing layer above the fused
inference engine (Section 4.7's sub-millisecond serving path) and implements
the deployment recipe of the paper's Section 5 discussion:

* **Result caching** — queries are canonicalized via ``Query.signature()``
  into a signature-keyed LRU, so the repetitive traffic an optimizer
  generates (the same subqueries costed across plan enumerations) is
  answered without touching the model at all.
* **Micro-batch coalescing** — cache misses from concurrent callers are
  queued and drained by a single batcher thread into one fused
  ``estimate_featurized`` pass per micro-batch: set-wise MLPs and pooling
  amortize across every in-flight request instead of running per caller.
* **Uncertainty-routed fallback** — when the model is an
  :class:`~repro.core.ensemble.EnsembleMSCNEstimator`, queries whose member
  spread exceeds ``max_spread`` are out-of-distribution by the deep-ensembles
  signal; those (and queries whose join count exceeds the trained
  ``max_joins`` range) are re-estimated by a configurable traditional
  :class:`~repro.estimators.base.CardinalityEstimator` (e.g. random sampling
  or IBJS), exactly the hybrid the paper proposes.
* **Atomic hot-swap** — :meth:`swap_model` replaces the serving model under
  a lock, bumps a generation counter and clears the cache; an in-flight
  micro-batch computed against the old model can never publish stale results
  into the new model's cache.

On top of the fast path sits the reliability layer a production optimizer
needs — no caller ever hangs, and every request resolves to a correct
estimate, a degraded (fallback) estimate, or a typed error:

* **Admission control** — the pending queue is bounded
  (``max_queue_depth`` queries); an overloaded service either rejects new
  misses with a typed :class:`~repro.serving.errors.ServiceOverloadedError`
  (``overload_policy="reject"``) or answers them straight from the fallback
  estimator (``"degrade"``), never queueing unbounded work.
* **Deadline propagation** — every request carries a deadline (defaulting
  to ``request_timeout_seconds``); the batcher removes expired requests at
  dequeue time — their queries are *not* featurized or inferred as dead
  work — and resolves them with a typed
  :class:`~repro.serving.errors.DeadlineExceededError`.
* **Circuit breaker** — consecutive inference failures open a
  :class:`~repro.serving.breaker.CircuitBreaker`; while open, batches
  degrade to the fallback estimator without touching the model (typed
  :class:`~repro.serving.errors.ModelUnavailableError` when there is no
  fallback), and half-open probes test recovery.  Degraded estimates are
  **never** published to the result cache, so once the breaker closes the
  served values are bit-identical to the pre-fault path.
* **Batcher watchdog** — a batcher thread that dies outside its per-batch
  error handling is detected (both by the dying thread itself and on the
  next admission) and restarted without losing queued requests; the crash,
  with its original traceback, is kept for :meth:`health` and used to fail
  requests that cannot be replayed (service already closed).
* **Fail-fast close** — :meth:`close` rejects queued-but-unstarted requests
  with a typed :class:`~repro.serving.errors.ServiceClosedError` immediately
  (no caller is left waiting out a timeout), is idempotent, and makes
  subsequent ``estimate`` calls raise immediately.

All public methods are safe to call from any number of threads.
"""

from __future__ import annotations

import inspect
import threading
import time
import traceback
from collections import deque
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.featurization import FeatureBuffers
from repro.db.query import Query
from repro.estimators.base import CardinalityEstimator, subplan_map
from repro.serving.breaker import BreakerState, CircuitBreaker
from repro.serving.cache import ResultCache
from repro.serving.errors import (
    DeadlineExceededError,
    ModelUnavailableError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.serving.stats import ServiceStats, StatsAccumulator
from repro.utils.faults import fault_point

__all__ = ["EstimationService", "ServiceConfig"]

_OVERLOAD_POLICIES = ("reject", "degrade")

#: Sentinel distinguishing "no timeout passed" from an explicit ``None``
#: (which disables the deadline entirely).
_UNSET = object()


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`EstimationService`.

    ``batch_window_seconds`` bounds how long the batcher waits for more
    concurrent callers before running a partially filled micro-batch; zero
    disables the wait (lowest latency, least coalescing).  ``max_spread`` is
    the ensemble-disagreement threshold above which a query is routed to the
    fallback estimator; ``max_joins`` routes queries with more joins than the
    model was trained on (``None`` disables join-count routing).

    ``request_timeout_seconds`` is the default per-request deadline (``None``
    disables deadlines); ``deadline_grace_seconds`` is the extra slack a
    caller waits for the batcher's own typed timeout before concluding it on
    its side.  ``max_queue_depth`` bounds the pending queue in *queries*;
    ``overload_policy`` picks what happens beyond it.  The ``breaker_*``
    knobs configure the inference circuit breaker (see
    :class:`~repro.serving.breaker.CircuitBreaker`).
    """

    cache_capacity: int = 4096
    max_batch_size: int = 1024
    batch_window_seconds: float = 0.001
    max_spread: float = 2.0
    max_joins: int | None = None
    request_timeout_seconds: float | None = 60.0
    deadline_grace_seconds: float = 5.0
    max_queue_depth: int = 4096
    overload_policy: str = "reject"
    breaker_failure_threshold: int = 5
    breaker_reset_timeout_seconds: float = 30.0
    breaker_half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.cache_capacity <= 0:
            raise ValueError("cache_capacity must be positive")
        if self.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if self.batch_window_seconds < 0:
            raise ValueError("batch_window_seconds must be non-negative")
        if self.max_spread < 1.0:
            raise ValueError("max_spread is a q-error factor and must be >= 1")
        if self.max_joins is not None and self.max_joins < 0:
            raise ValueError("max_joins must be non-negative")
        if self.request_timeout_seconds is not None and self.request_timeout_seconds <= 0:
            raise ValueError("request_timeout_seconds must be positive (or None)")
        if self.deadline_grace_seconds < 0:
            raise ValueError("deadline_grace_seconds must be non-negative")
        if self.max_queue_depth <= 0:
            raise ValueError("max_queue_depth must be positive")
        if self.overload_policy not in _OVERLOAD_POLICIES:
            raise ValueError(
                f"overload_policy must be one of {_OVERLOAD_POLICIES}, "
                f"got {self.overload_policy!r}"
            )
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be >= 1")
        if self.breaker_reset_timeout_seconds < 0:
            raise ValueError("breaker_reset_timeout_seconds must be non-negative")
        if self.breaker_half_open_probes < 1:
            raise ValueError("breaker_half_open_probes must be >= 1")


class _Request:
    """One caller's cache-missed queries plus the future carrying results.

    ``deadline`` is an absolute clock reading (``None`` = no deadline); the
    batcher drops requests past it at dequeue time.  Resolution goes through
    :meth:`resolve`/:meth:`fail` so a request is only ever settled once.
    """

    __slots__ = ("queries", "signatures", "deadline", "future")

    def __init__(
        self,
        queries: list[Query],
        signatures: list[tuple],
        deadline: float | None = None,
    ):
        self.queries = queries
        self.signatures = signatures
        self.deadline = deadline
        self.future: Future = Future()

    def resolve(self, values: np.ndarray) -> None:
        if not self.future.done():
            self.future.set_result(values)

    def fail(self, error: BaseException) -> None:
        if not self.future.done():
            self.future.set_exception(error)


class EstimationService:
    """Serve cardinality estimates to concurrent callers.

    Parameters
    ----------
    model:
        The serving model — an :class:`~repro.core.estimator.MSCNEstimator`
        or :class:`~repro.core.ensemble.EnsembleMSCNEstimator` (anything
        providing ``serving_dataset`` + ``estimate_featurized``; uncertainty
        routing additionally needs ``estimate_featurized_with_uncertainty``).
    fallback:
        Optional traditional estimator that answers low-confidence queries —
        and, in the reliability layer, overload-degraded traffic and batches
        the circuit breaker keeps away from a failing model.
    config:
        A :class:`ServiceConfig`; defaults are sensible for tests and
        examples.
    clock:
        Monotonic time source for deadlines and the circuit breaker;
        injectable so reliability tests run without real waiting.
    """

    def __init__(
        self,
        model,
        *,
        fallback: CardinalityEstimator | None = None,
        config: ServiceConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config if config is not None else ServiceConfig()
        self.fallback = fallback
        self._clock = clock
        self._model = model
        self._generation = 0
        self._model_lock = threading.Lock()
        # Reusable featurization buffers for the zero-copy serving path.
        # Only the single batcher thread featurizes, and each micro-batch is
        # fully answered before the next one is featurized, so one buffer set
        # matches the aliasing lifecycle exactly.  Support is detected per
        # model (by signature, once — not by catching TypeErrors per batch).
        self._feature_buffers = FeatureBuffers()
        self._buffers_supported = self._supports_feature_buffers(model)
        self._cache = ResultCache(self.config.cache_capacity)
        self._stats = StatsAccumulator()
        self._breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failure_threshold,
            reset_timeout_seconds=self.config.breaker_reset_timeout_seconds,
            half_open_max_probes=self.config.breaker_half_open_probes,
            clock=clock,
        )
        self._pending: deque[_Request] = deque()
        self._queued_queries = 0
        self._pending_available = threading.Condition(threading.Lock())
        self._closed = False
        self._worker: threading.Thread | None = None
        self._worker_ever_started = False
        self._last_batcher_crash: BaseException | None = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def estimate(self, query: Query, *, timeout_seconds=_UNSET) -> float:
        """Estimated cardinality of one query (cached, coalesced, routed)."""
        return float(self.estimate_many([query], timeout_seconds=timeout_seconds)[0])

    def estimate_many(
        self, queries: Sequence[Query], *, timeout_seconds=_UNSET
    ) -> np.ndarray:
        """Estimated cardinalities for a sequence of queries.

        Cache hits are answered inline; the misses are submitted to the
        batcher as one request, where they coalesce with every other caller's
        in-flight misses into shared fused passes.

        ``timeout_seconds`` overrides the configured per-request deadline for
        this call (``None`` disables it).  An expired request resolves with a
        typed :class:`DeadlineExceededError`; an over-admission request with
        a :class:`ServiceOverloadedError` (or a degraded fallback answer,
        per ``overload_policy``); a closed service with a
        :class:`ServiceClosedError` — never a silent hang.
        """
        if self._closed:
            raise ServiceClosedError("the estimation service has been closed")
        if not queries:
            return np.empty(0, dtype=np.float64)
        if timeout_seconds is _UNSET:
            timeout_seconds = self.config.request_timeout_seconds
        deadline = None if timeout_seconds is None else self._clock() + timeout_seconds
        signatures = [query.signature() for query in queries]
        results = np.empty(len(queries), dtype=np.float64)
        miss_positions: list[int] = []
        hits = 0
        for position, signature in enumerate(signatures):
            cached = self._cache.get(signature)
            if cached is None:
                miss_positions.append(position)
            else:
                results[position] = cached
                hits += 1
        self._stats.record_lookups(hits, len(miss_positions))
        if miss_positions:
            request = _Request(
                [queries[i] for i in miss_positions],
                [signatures[i] for i in miss_positions],
                deadline,
            )
            if self._admit(request):
                results[miss_positions] = self._await_result(request, deadline)
            else:
                # Overload-degraded: answered inline by the fallback, not
                # queued — and never published to the model's result cache.
                results[miss_positions] = self._degrade(request.queries)
        return results

    def estimate_subplans(self, query: Query) -> dict[frozenset[str], float]:
        """Estimates for every connected sub-plan of ``query``.

        The optimizer-shaped entry point: one plan-enumeration request fans
        out into every connected subgraph of the query.  The sub-queries are
        routed through :meth:`estimate_many`, so each sub-plan is answered
        from the signature-keyed cache when any earlier request — including a
        *different* query sharing the sub-plan, or a previous enumeration of
        the same query — already computed it; only genuinely new sub-plans
        reach the model, coalesced into one micro-batch.
        """
        subqueries = query.connected_subqueries()
        return subplan_map(subqueries, self.estimate_many(subqueries))

    @staticmethod
    def _supports_feature_buffers(model) -> bool:
        """Whether ``model.serving_dataset`` accepts a ``buffers`` argument."""
        serving_dataset = getattr(model, "serving_dataset", None)
        if serving_dataset is None:
            return False
        try:
            return "buffers" in inspect.signature(serving_dataset).parameters
        except (TypeError, ValueError):  # builtins / C callables
            return False

    def stats(self) -> ServiceStats:
        """An immutable snapshot of the service counters and latencies."""
        with self._model_lock:
            model = self._model
        return self._stats.snapshot(
            cache_evictions=self._cache.evictions,
            scratch_high_water_bytes=int(
                getattr(model, "scratch_high_water_bytes", 0)
            ),
            feature_buffer_bytes=self._feature_buffers.nbytes,
            feature_arena_high_water_bytes=self._feature_buffers.high_water_bytes,
            feature_arena_reuse_rate=self._feature_buffers.reuse_rate,
            scratch_reuse_rate=float(getattr(model, "scratch_reuse_rate", 0.0)),
            breaker_state=self._breaker.state,
            breaker_opens=self._breaker.opens,
        )

    def health(self) -> dict:
        """A health/readiness snapshot for probes and operators.

        ``healthy`` means the service accepts traffic and the model path is
        trusted (breaker not open); ``ready`` additionally requires headroom
        in the pending queue.  ``last_batcher_crash`` carries the traceback
        text of the most recent batcher death (the watchdog restarts the
        thread, but the diagnostic is preserved).
        """
        worker = self._worker
        with self._pending_available:
            closed = self._closed
            queue_depth = self._queued_queries
            crash = self._last_batcher_crash
        breaker_state = self._breaker.state
        healthy = not closed and breaker_state != BreakerState.OPEN
        return {
            "healthy": healthy,
            "ready": healthy and queue_depth < self.config.max_queue_depth,
            "closed": closed,
            "breaker_state": breaker_state,
            "breaker_opens": self._breaker.opens,
            "queue_depth": queue_depth,
            "max_queue_depth": self.config.max_queue_depth,
            "batcher_alive": worker.is_alive() if worker is not None else False,
            "last_batcher_crash": (
                getattr(crash, "traceback_text", str(crash)) if crash is not None else None
            ),
            "cache": self._cache.stats(),
            "model_generation": self._generation,
        }

    @property
    def model(self):
        """The currently serving model."""
        with self._model_lock:
            return self._model

    @property
    def cache(self) -> ResultCache:
        return self._cache

    @property
    def breaker(self) -> CircuitBreaker:
        """The inference circuit breaker (read-mostly; the batcher drives it)."""
        return self._breaker

    def swap_model(self, model) -> None:
        """Atomically replace the serving model and invalidate the cache.

        The generation bump and the cache clear happen under the model lock,
        so a micro-batch computed against the old model (its generation no
        longer matches) can never publish stale estimates afterwards.  A
        successful swap also closes the circuit breaker: the failure history
        of the retired model says nothing about the new one.
        """
        buffers_supported = self._supports_feature_buffers(model)
        with self._model_lock:
            self._model = model
            self._generation += 1
            self._buffers_supported = buffers_supported
            self._cache.clear()
        # The new model may featurize to different widths/dtype; dropping the
        # backing arrays here (instead of relying on width-mismatch regrowth)
        # keeps a swap from pinning the old schema's buffers forever.  The
        # generation bump also resets the grow-only guarantee: capacities
        # are monotone within a model generation, not across swaps.
        self._feature_buffers.advance_generation()
        self._breaker.record_success()
        self._stats.record_swap()

    def swap_from_registry(
        self, registry, name: str, version: int | None = None, retry=None
    ) -> None:
        """Hot-swap to a :class:`~repro.serving.registry.ModelRegistry` model.

        ``retry`` is an optional :class:`~repro.serving.registry.RetryPolicy`
        for transient load failures; load errors (typed) propagate without
        touching the currently serving model, so a failed swap never degrades
        live traffic.
        """
        self.swap_model(registry.load(name, version, retry=retry))

    def close(self) -> None:
        """Stop the batcher and resolve every queued request immediately.

        Queued-but-unstarted requests resolve with a typed
        :class:`ServiceClosedError` (no caller is left waiting out its
        timeout); a micro-batch already computing finishes and delivers its
        results.  Repeated ``close()`` is a no-op, and ``estimate()`` after
        close raises immediately.
        """
        with self._pending_available:
            self._closed = True
            worker = self._worker
            self._pending_available.notify_all()
        if worker is not None:
            worker.join(timeout=10.0)
        self._fail_pending(ServiceClosedError("the estimation service has been closed"))

    def __enter__(self) -> "EstimationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Admission control and request resolution
    # ------------------------------------------------------------------
    def _admit(self, request: _Request) -> bool:
        """Queue the request for the batcher, or decide to degrade it.

        Returns ``True`` when queued; ``False`` when the caller should
        answer it inline via the fallback (overload + ``degrade`` policy).
        Raises :class:`ServiceOverloadedError` when the queue is full and
        shedding is the policy (or there is nothing to degrade to), and
        :class:`ServiceClosedError` when the service closed meanwhile.
        """
        self._ensure_worker()
        with self._pending_available:
            if self._closed:
                raise ServiceClosedError("the estimation service has been closed")
            depth = self._queued_queries
            # The bound limits work queued *behind* other requests: a single
            # oversized request entering an empty queue is admitted (it could
            # never run otherwise), but nothing may pile up beyond the depth.
            if depth > 0 and depth + len(request.queries) > self.config.max_queue_depth:
                if self.config.overload_policy == "degrade" and self.fallback is not None:
                    return False
                self._stats.record_shed(len(request.queries))
                raise ServiceOverloadedError(
                    f"pending queue is full ({depth} queries queued, "
                    f"max_queue_depth={self.config.max_queue_depth})",
                    queued_queries=depth,
                    max_queue_depth=self.config.max_queue_depth,
                )
            self._pending.append(request)
            self._queued_queries += len(request.queries)
            self._pending_available.notify()
            return True

    def _await_result(self, request: _Request, deadline: float | None) -> np.ndarray:
        """Wait for the batcher to settle the request, bounded by its deadline.

        The batcher resolves expired requests with the typed error itself;
        the grace period only covers the window where the batcher is wedged
        mid-computation — after it, the caller concludes the timeout on its
        side so no request ever outlives ``deadline + grace``.
        """
        if deadline is None:
            timeout = None
        else:
            remaining = max(0.0, deadline - self._clock())
            timeout = remaining + self.config.deadline_grace_seconds
        try:
            return request.future.result(timeout=timeout)
        except FutureTimeoutError:
            raise DeadlineExceededError(
                "request deadline expired while waiting for the batcher"
            ) from None

    def _degrade(self, queries: list[Query]) -> np.ndarray:
        """Answer queries via the fallback estimator (reliability-degraded).

        Degraded estimates are intentionally *not* published to the result
        cache: they are a transient substitute, and once the model path
        recovers the cache must only ever reflect model output — that is
        what makes post-recovery serving bit-identical to the pre-fault
        path.
        """
        if self.fallback is None:
            raise ModelUnavailableError(
                "the model path is unavailable and no fallback estimator is configured"
            )
        start = time.perf_counter()
        values = np.asarray(self.fallback.estimate_many(queries), dtype=np.float64)
        self._stats.record_degraded(len(queries), time.perf_counter() - start)
        return values

    def _fail_pending(self, error: BaseException) -> None:
        """Settle every queued request with ``error`` (close/crash path)."""
        with self._pending_available:
            pending = list(self._pending)
            self._pending.clear()
            self._queued_queries = 0
        for request in pending:
            request.fail(error)

    # ------------------------------------------------------------------
    # Batching worker and watchdog
    # ------------------------------------------------------------------
    def _ensure_worker(self) -> None:
        """Start the batcher thread, restarting it if it died (watchdog).

        The aliveness check runs on every admission, so even a thread killed
        without its own crash handler running is replaced before new work
        queues behind it.  Queued requests survive a restart untouched: the
        replacement thread drains the same deque.
        """
        worker = self._worker
        if worker is not None and worker.is_alive():
            return
        with self._pending_available:
            if self._closed:
                return
            if self._worker is not None and not self._worker.is_alive():
                self._worker = None
            if self._worker is None:
                if self._worker_ever_started:
                    self._stats.record_batcher_restart()
                worker = threading.Thread(
                    target=self._worker_loop,
                    name="estimation-service-batcher",
                    daemon=True,
                )
                self._worker = worker
                self._worker_ever_started = True
                worker.start()

    def _worker_loop(self) -> None:
        try:
            while True:
                fault_point("batcher.loop")
                requests = self._next_batch()
                if requests is None:
                    return
                self._process(requests)
        except BaseException as error:  # noqa: BLE001 — the thread must not die silently
            from repro.serving.errors import BatcherCrashedError

            crash = BatcherCrashedError(
                f"estimation batcher thread crashed: {error!r}",
                traceback_text=traceback.format_exc(),
            )
            crash.__cause__ = error
            me = threading.current_thread()
            with self._pending_available:
                self._last_batcher_crash = crash
                if self._worker is me:
                    self._worker = None
                closed = self._closed
            if closed:
                # No watchdog will run again: fail fast with the diagnostic
                # instead of letting queued callers wait out their timeouts.
                self._fail_pending(crash)
            else:
                # Watchdog: replace the dead thread; queued requests are
                # still in the deque and are drained by the replacement.
                self._ensure_worker()

    def _next_batch(self) -> list[_Request] | None:
        """Block for work, then coalesce concurrent requests into one batch.

        After the first request arrives the batcher keeps the window open for
        ``batch_window_seconds`` (or until ``max_batch_size`` queries are
        pending), so bursts from many threads drain as a handful of fused
        passes instead of one pass per caller.  A closed service stops
        dequeuing immediately — the queued remainder is settled with typed
        errors by :meth:`close`.
        """
        with self._pending_available:
            while not self._pending and not self._closed:
                self._pending_available.wait()
            if self._closed:
                return None
            deadline = time.monotonic() + self.config.batch_window_seconds
            while not self._closed:
                if sum(len(r.queries) for r in self._pending) >= self.config.max_batch_size:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._pending_available.wait(remaining)
            if self._closed:
                return None
            requests: list[_Request] = []
            quota = self.config.max_batch_size
            while self._pending and quota > 0:
                request = self._pending.popleft()
                self._queued_queries -= len(request.queries)
                requests.append(request)
                quota -= len(request.queries)
            return requests

    def _process(self, requests: list[_Request]) -> None:
        """Answer a coalesced batch: expire, dedupe, one fused pass, scatter.

        Requests past their deadline are settled with the typed timeout error
        *before* featurization — their queries never become dead work (unless
        a still-live request shares them).
        """
        now = self._clock()
        live: list[_Request] = []
        for request in requests:
            if request.deadline is not None and now >= request.deadline:
                self._stats.record_expired(len(request.queries))
                request.fail(
                    DeadlineExceededError(
                        "request deadline expired while queued; dropped at dequeue"
                    )
                )
            else:
                live.append(request)
        if not live:
            return
        try:
            unique: dict[tuple, Query] = {}
            for request in live:
                for query, signature in zip(request.queries, request.signatures):
                    unique.setdefault(signature, query)
            resolved: dict[tuple, float] = {}
            to_compute: list[tuple[tuple, Query]] = []
            for signature, query in unique.items():
                # A concurrent batch (or a swap-preceding batch) may have
                # answered this signature since the caller's miss; peek so
                # these internal probes don't skew the request hit rate.
                cached = self._cache.peek(signature)
                if cached is None:
                    to_compute.append((signature, query))
                else:
                    resolved[signature] = cached
            if to_compute:
                estimates, cacheable, generation = self._compute_guarded(
                    [q for _, q in to_compute]
                )
                fresh = {
                    signature: float(value)
                    for (signature, _), value in zip(to_compute, estimates)
                }
                resolved.update(fresh)
                if cacheable:
                    self._publish(fresh, generation)
            for request in live:
                request.resolve(
                    np.array(
                        [resolved[s] for s in request.signatures], dtype=np.float64
                    )
                )
        except BaseException as error:  # noqa: BLE001 — must reach the callers
            for request in live:
                request.fail(error)

    def _publish(self, fresh: dict[tuple, float], generation: int) -> None:
        """Insert computed estimates, unless the model was swapped meanwhile."""
        with self._model_lock:
            if generation != self._generation:
                return
            for signature, value in fresh.items():
                self._cache.put(signature, value)

    # ------------------------------------------------------------------
    # Model execution behind the circuit breaker
    # ------------------------------------------------------------------
    def _compute_guarded(
        self, queries: list[Query]
    ) -> tuple[np.ndarray, bool, int]:
        """Run the model behind the breaker, degrading on failure.

        Returns ``(estimates, cacheable, generation)``: model output is
        cacheable under its generation; fallback-degraded output is not
        (transient substitutes must never poison the cache).
        """
        if self._breaker.allow():
            try:
                estimates, generation = self._compute(queries)
            except Exception as error:
                self._breaker.record_failure()
                self._stats.record_inference_failure()
                if self.fallback is None:
                    raise ModelUnavailableError(
                        f"model inference failed and no fallback estimator "
                        f"is configured: {error!r}"
                    ) from error
                return self._degrade(queries), False, -1
            self._breaker.record_success()
            return estimates, True, generation
        # Breaker open: the model is not touched at all.
        return self._degrade(queries), False, -1

    def _compute(self, queries: list[Query]) -> tuple[np.ndarray, int]:
        """One fused featurize+infer pass plus fallback routing.

        Returns the estimates and the model generation they were computed
        under (for the stale-publish guard).
        """
        with self._model_lock:
            model = self._model
            generation = self._generation
            buffers_supported = self._buffers_supported
        samples = getattr(model, "samples", None)
        hits_before = samples.bitmap_cache_hits if samples is not None else 0
        start = time.perf_counter()
        if buffers_supported:
            # Zero-copy: the dataset views the service's reusable buffers.
            # Safe because only this (single) batcher thread featurizes and
            # the micro-batch is fully consumed before the next one starts.
            # The lease scopes one micro-batch's scratch lifetime: if no
            # array grew, the batch counts as served from recycled capacity
            # (surfaced as ``feature_arena_reuse_rate``).
            with self._feature_buffers.lease():
                dataset = model.serving_dataset(queries, buffers=self._feature_buffers)
        else:
            dataset = model.serving_dataset(queries)
        featurization_seconds = time.perf_counter() - start
        hits_after = samples.bitmap_cache_hits if samples is not None else 0

        start = time.perf_counter()
        spreads = None
        if hasattr(model, "estimate_featurized_with_uncertainty"):
            estimates, spreads, _ = model.estimate_featurized_with_uncertainty(dataset)
        else:
            estimates = model.estimate_featurized(dataset)
        inference_seconds = time.perf_counter() - start
        estimates = np.array(estimates, dtype=np.float64)
        self._stats.record_batch(
            batch_size=len(queries),
            featurization_seconds=featurization_seconds,
            inference_seconds=inference_seconds,
            bitmap_cache_hits=hits_after - hits_before,
        )

        if self.fallback is not None:
            routed = self._route_to_fallback(queries, spreads)
            if routed.any():
                routed_queries = [q for q, r in zip(queries, routed) if r]
                start = time.perf_counter()
                estimates[routed] = self.fallback.estimate_many(routed_queries)
                self._stats.record_fallback(
                    len(routed_queries), time.perf_counter() - start
                )
        return estimates, generation

    def _route_to_fallback(
        self, queries: list[Query], spreads: np.ndarray | None
    ) -> np.ndarray:
        """Which queries the model should not be trusted on (Section 5)."""
        routed = np.zeros(len(queries), dtype=bool)
        if self.config.max_joins is not None:
            routed |= np.array(
                [query.num_joins > self.config.max_joins for query in queries]
            )
        if spreads is not None:
            routed |= np.asarray(spreads) > self.config.max_spread
        return routed
