"""The micro-batched, cache-fronted estimation service.

:class:`EstimationService` is the traffic-facing layer above the fused
inference engine (Section 4.7's sub-millisecond serving path) and implements
the deployment recipe of the paper's Section 5 discussion:

* **Result caching** — queries are canonicalized via ``Query.signature()``
  into a signature-keyed LRU, so the repetitive traffic an optimizer
  generates (the same subqueries costed across plan enumerations) is
  answered without touching the model at all.
* **Micro-batch coalescing** — cache misses from concurrent callers are
  queued and drained by a single batcher thread into one fused
  ``estimate_featurized`` pass per micro-batch: set-wise MLPs and pooling
  amortize across every in-flight request instead of running per caller.
* **Uncertainty-routed fallback** — when the model is an
  :class:`~repro.core.ensemble.EnsembleMSCNEstimator`, queries whose member
  spread exceeds ``max_spread`` are out-of-distribution by the deep-ensembles
  signal; those (and queries whose join count exceeds the trained
  ``max_joins`` range) are re-estimated by a configurable traditional
  :class:`~repro.estimators.base.CardinalityEstimator` (e.g. random sampling
  or IBJS), exactly the hybrid the paper proposes.
* **Atomic hot-swap** — :meth:`swap_model` replaces the serving model under
  a lock, bumps a generation counter and clears the cache; an in-flight
  micro-batch computed against the old model can never publish stale results
  into the new model's cache.

All public methods are safe to call from any number of threads.
"""

from __future__ import annotations

import inspect
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.featurization import FeatureBuffers
from repro.db.query import Query
from repro.estimators.base import CardinalityEstimator, subplan_map
from repro.serving.cache import ResultCache
from repro.serving.stats import ServiceStats, StatsAccumulator

__all__ = ["EstimationService", "ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`EstimationService`.

    ``batch_window_seconds`` bounds how long the batcher waits for more
    concurrent callers before running a partially filled micro-batch; zero
    disables the wait (lowest latency, least coalescing).  ``max_spread`` is
    the ensemble-disagreement threshold above which a query is routed to the
    fallback estimator; ``max_joins`` routes queries with more joins than the
    model was trained on (``None`` disables join-count routing).
    """

    cache_capacity: int = 4096
    max_batch_size: int = 1024
    batch_window_seconds: float = 0.001
    max_spread: float = 2.0
    max_joins: int | None = None
    request_timeout_seconds: float | None = 60.0

    def __post_init__(self) -> None:
        if self.cache_capacity <= 0:
            raise ValueError("cache_capacity must be positive")
        if self.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if self.batch_window_seconds < 0:
            raise ValueError("batch_window_seconds must be non-negative")
        if self.max_spread < 1.0:
            raise ValueError("max_spread is a q-error factor and must be >= 1")
        if self.max_joins is not None and self.max_joins < 0:
            raise ValueError("max_joins must be non-negative")


class _Request:
    """One caller's cache-missed queries plus the future carrying results."""

    __slots__ = ("queries", "signatures", "future")

    def __init__(self, queries: list[Query], signatures: list[tuple]):
        self.queries = queries
        self.signatures = signatures
        self.future: Future = Future()


class EstimationService:
    """Serve cardinality estimates to concurrent callers.

    Parameters
    ----------
    model:
        The serving model — an :class:`~repro.core.estimator.MSCNEstimator`
        or :class:`~repro.core.ensemble.EnsembleMSCNEstimator` (anything
        providing ``serving_dataset`` + ``estimate_featurized``; uncertainty
        routing additionally needs ``estimate_featurized_with_uncertainty``).
    fallback:
        Optional traditional estimator that answers low-confidence queries.
        Without it, every query is answered by the model.
    config:
        A :class:`ServiceConfig`; defaults are sensible for tests and
        examples.
    """

    def __init__(
        self,
        model,
        *,
        fallback: CardinalityEstimator | None = None,
        config: ServiceConfig | None = None,
    ):
        self.config = config if config is not None else ServiceConfig()
        self.fallback = fallback
        self._model = model
        self._generation = 0
        self._model_lock = threading.Lock()
        # Reusable featurization buffers for the zero-copy serving path.
        # Only the single batcher thread featurizes, and each micro-batch is
        # fully answered before the next one is featurized, so one buffer set
        # matches the aliasing lifecycle exactly.  Support is detected per
        # model (by signature, once — not by catching TypeErrors per batch).
        self._feature_buffers = FeatureBuffers()
        self._buffers_supported = self._supports_feature_buffers(model)
        self._cache = ResultCache(self.config.cache_capacity)
        self._stats = StatsAccumulator()
        self._pending: deque[_Request] = deque()
        self._pending_available = threading.Condition(threading.Lock())
        self._closed = False
        self._worker: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def estimate(self, query: Query) -> float:
        """Estimated cardinality of one query (cached, coalesced, routed)."""
        return float(self.estimate_many([query])[0])

    def estimate_many(self, queries: Sequence[Query]) -> np.ndarray:
        """Estimated cardinalities for a sequence of queries.

        Cache hits are answered inline; the misses are submitted to the
        batcher as one request, where they coalesce with every other caller's
        in-flight misses into shared fused passes.
        """
        if not queries:
            return np.empty(0, dtype=np.float64)
        signatures = [query.signature() for query in queries]
        results = np.empty(len(queries), dtype=np.float64)
        miss_positions: list[int] = []
        hits = 0
        for position, signature in enumerate(signatures):
            cached = self._cache.get(signature)
            if cached is None:
                miss_positions.append(position)
            else:
                results[position] = cached
                hits += 1
        self._stats.record_lookups(hits, len(miss_positions))
        if miss_positions:
            request = _Request(
                [queries[i] for i in miss_positions],
                [signatures[i] for i in miss_positions],
            )
            self._enqueue(request)
            results[miss_positions] = request.future.result(
                timeout=self.config.request_timeout_seconds
            )
        return results

    def estimate_subplans(self, query: Query) -> dict[frozenset[str], float]:
        """Estimates for every connected sub-plan of ``query``.

        The optimizer-shaped entry point: one plan-enumeration request fans
        out into every connected subgraph of the query.  The sub-queries are
        routed through :meth:`estimate_many`, so each sub-plan is answered
        from the signature-keyed cache when any earlier request — including a
        *different* query sharing the sub-plan, or a previous enumeration of
        the same query — already computed it; only genuinely new sub-plans
        reach the model, coalesced into one micro-batch.
        """
        subqueries = query.connected_subqueries()
        return subplan_map(subqueries, self.estimate_many(subqueries))

    @staticmethod
    def _supports_feature_buffers(model) -> bool:
        """Whether ``model.serving_dataset`` accepts a ``buffers`` argument."""
        serving_dataset = getattr(model, "serving_dataset", None)
        if serving_dataset is None:
            return False
        try:
            return "buffers" in inspect.signature(serving_dataset).parameters
        except (TypeError, ValueError):  # builtins / C callables
            return False

    def stats(self) -> ServiceStats:
        """An immutable snapshot of the service counters and latencies."""
        with self._model_lock:
            model = self._model
        return self._stats.snapshot(
            cache_evictions=self._cache.evictions,
            scratch_high_water_bytes=int(
                getattr(model, "scratch_high_water_bytes", 0)
            ),
            feature_buffer_bytes=self._feature_buffers.nbytes,
        )

    @property
    def model(self):
        """The currently serving model."""
        with self._model_lock:
            return self._model

    @property
    def cache(self) -> ResultCache:
        return self._cache

    def swap_model(self, model) -> None:
        """Atomically replace the serving model and invalidate the cache.

        The generation bump and the cache clear happen under the model lock,
        so a micro-batch computed against the old model (its generation no
        longer matches) can never publish stale estimates afterwards.
        """
        buffers_supported = self._supports_feature_buffers(model)
        with self._model_lock:
            self._model = model
            self._generation += 1
            self._buffers_supported = buffers_supported
            self._cache.clear()
        # The new model may featurize to different widths/dtype; dropping the
        # backing arrays here (instead of relying on width-mismatch regrowth)
        # keeps a swap from pinning the old schema's buffers forever.
        self._feature_buffers.reset()
        self._stats.record_swap()

    def swap_from_registry(self, registry, name: str, version: int | None = None) -> None:
        """Hot-swap to a :class:`~repro.serving.registry.ModelRegistry` model."""
        self.swap_model(registry.load(name, version))

    def close(self) -> None:
        """Drain pending requests, stop the batcher thread and reject new work."""
        with self._pending_available:
            self._closed = True
            self._pending_available.notify_all()
        if self._worker is not None:
            self._worker.join(timeout=10.0)

    def __enter__(self) -> "EstimationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Batching worker
    # ------------------------------------------------------------------
    def _enqueue(self, request: _Request) -> None:
        self._ensure_worker()
        with self._pending_available:
            if self._closed:
                raise RuntimeError("the estimation service has been closed")
            self._pending.append(request)
            self._pending_available.notify()

    def _ensure_worker(self) -> None:
        if self._worker is not None:
            return
        with self._pending_available:
            if self._worker is None and not self._closed:
                worker = threading.Thread(
                    target=self._worker_loop,
                    name="estimation-service-batcher",
                    daemon=True,
                )
                self._worker = worker
                worker.start()

    def _worker_loop(self) -> None:
        while True:
            requests = self._next_batch()
            if requests is None:
                return
            self._process(requests)

    def _next_batch(self) -> list[_Request] | None:
        """Block for work, then coalesce concurrent requests into one batch.

        After the first request arrives the batcher keeps the window open for
        ``batch_window_seconds`` (or until ``max_batch_size`` queries are
        pending), so bursts from many threads drain as a handful of fused
        passes instead of one pass per caller.
        """
        with self._pending_available:
            while not self._pending and not self._closed:
                self._pending_available.wait()
            if not self._pending:
                return None  # closed and drained
            deadline = time.monotonic() + self.config.batch_window_seconds
            while not self._closed:
                if sum(len(r.queries) for r in self._pending) >= self.config.max_batch_size:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._pending_available.wait(remaining)
            requests: list[_Request] = []
            quota = self.config.max_batch_size
            while self._pending and quota > 0:
                request = self._pending.popleft()
                requests.append(request)
                quota -= len(request.queries)
            return requests

    def _process(self, requests: list[_Request]) -> None:
        """Answer a coalesced batch: dedupe, one fused pass, scatter, cache."""
        try:
            unique: dict[tuple, Query] = {}
            for request in requests:
                for query, signature in zip(request.queries, request.signatures):
                    unique.setdefault(signature, query)
            resolved: dict[tuple, float] = {}
            to_compute: list[tuple[tuple, Query]] = []
            for signature, query in unique.items():
                # A concurrent batch (or a swap-preceding batch) may have
                # answered this signature since the caller's miss; peek so
                # these internal probes don't skew the request hit rate.
                cached = self._cache.peek(signature)
                if cached is None:
                    to_compute.append((signature, query))
                else:
                    resolved[signature] = cached
            if to_compute:
                estimates, generation = self._compute([q for _, q in to_compute])
                fresh = {
                    signature: float(value)
                    for (signature, _), value in zip(to_compute, estimates)
                }
                resolved.update(fresh)
                self._publish(fresh, generation)
            for request in requests:
                request.future.set_result(
                    np.array(
                        [resolved[s] for s in request.signatures], dtype=np.float64
                    )
                )
        except BaseException as error:  # noqa: BLE001 — must reach the callers
            for request in requests:
                if not request.future.done():
                    request.future.set_exception(error)

    def _publish(self, fresh: dict[tuple, float], generation: int) -> None:
        """Insert computed estimates, unless the model was swapped meanwhile."""
        with self._model_lock:
            if generation != self._generation:
                return
            for signature, value in fresh.items():
                self._cache.put(signature, value)

    # ------------------------------------------------------------------
    # Model execution
    # ------------------------------------------------------------------
    def _compute(self, queries: list[Query]) -> tuple[np.ndarray, int]:
        """One fused featurize+infer pass plus fallback routing.

        Returns the estimates and the model generation they were computed
        under (for the stale-publish guard).
        """
        with self._model_lock:
            model = self._model
            generation = self._generation
            buffers_supported = self._buffers_supported
        samples = getattr(model, "samples", None)
        hits_before = samples.bitmap_cache_hits if samples is not None else 0
        start = time.perf_counter()
        if buffers_supported:
            # Zero-copy: the dataset views the service's reusable buffers.
            # Safe because only this (single) batcher thread featurizes and
            # the micro-batch is fully consumed before the next one starts.
            dataset = model.serving_dataset(queries, buffers=self._feature_buffers)
        else:
            dataset = model.serving_dataset(queries)
        featurization_seconds = time.perf_counter() - start
        hits_after = samples.bitmap_cache_hits if samples is not None else 0

        start = time.perf_counter()
        spreads = None
        if hasattr(model, "estimate_featurized_with_uncertainty"):
            estimates, spreads, _ = model.estimate_featurized_with_uncertainty(dataset)
        else:
            estimates = model.estimate_featurized(dataset)
        inference_seconds = time.perf_counter() - start
        estimates = np.array(estimates, dtype=np.float64)
        self._stats.record_batch(
            batch_size=len(queries),
            featurization_seconds=featurization_seconds,
            inference_seconds=inference_seconds,
            bitmap_cache_hits=hits_after - hits_before,
        )

        if self.fallback is not None:
            routed = self._route_to_fallback(queries, spreads)
            if routed.any():
                routed_queries = [q for q, r in zip(queries, routed) if r]
                start = time.perf_counter()
                estimates[routed] = self.fallback.estimate_many(routed_queries)
                self._stats.record_fallback(
                    len(routed_queries), time.perf_counter() - start
                )
        return estimates, generation

    def _route_to_fallback(
        self, queries: list[Query], spreads: np.ndarray | None
    ) -> np.ndarray:
        """Which queries the model should not be trusted on (Section 5)."""
        routed = np.zeros(len(queries), dtype=bool)
        if self.config.max_joins is not None:
            routed |= np.array(
                [query.num_joins > self.config.max_joins for query in queries]
            )
        if spreads is not None:
            routed |= np.asarray(spreads) > self.config.max_spread
        return routed
