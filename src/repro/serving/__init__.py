"""Concurrency-safe estimation serving (the deployment layer of Section 5).

The paper argues that a learned estimator is only useful inside a query
optimizer if it is cheap *per call* and knows when not to trust itself.  This
package turns the fused inference engine of ``repro.core`` into a service:

``repro.serving.service``
    :class:`EstimationService` — a thread-safe front-end that canonicalizes
    queries into an LRU result cache, coalesces concurrent callers into
    micro-batches feeding one fused pass, and routes low-confidence queries
    (high ensemble spread, out-of-range join counts) to a traditional
    fallback estimator.  Bounded admission, per-request deadlines, a
    circuit breaker over inference, and a batcher watchdog guarantee every
    request resolves to an estimate or a typed error — never a silent hang.
``repro.serving.cache``
    :class:`ResultCache` — the signature-keyed LRU with hit/miss/eviction
    accounting.
``repro.serving.registry``
    :class:`ModelRegistry` — named, versioned, checksum-verified model
    persistence with atomically updated "current" pointers, retrying loads
    (:class:`RetryPolicy`) and rolling back failed promotions.
``repro.serving.breaker``
    :class:`CircuitBreaker` — the closed/open/half-open state machine that
    keeps traffic off a failing model path.
``repro.serving.errors``
    The typed exception hierarchy callers program against
    (:class:`ServiceOverloadedError`, :class:`DeadlineExceededError`, ...).
``repro.serving.stats``
    :class:`ServiceStats` — an extended :class:`~repro.core.estimator.
    PredictionTiming` snapshot (cache hit rate, batch-size histogram,
    per-stage latency, fallback rate, reliability counters).
"""

from repro.serving.breaker import BreakerState, CircuitBreaker
from repro.serving.cache import ResultCache
from repro.serving.errors import (
    BatcherCrashedError,
    DeadlineExceededError,
    ModelLoadError,
    ModelPromotionError,
    ModelUnavailableError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    SnapshotCorruptionError,
)
from repro.serving.registry import ModelRegistry, RetryPolicy
from repro.serving.service import EstimationService, ServiceConfig
from repro.serving.stats import ServiceStats

__all__ = [
    "EstimationService",
    "ServiceConfig",
    "ModelRegistry",
    "RetryPolicy",
    "ResultCache",
    "ServiceStats",
    "BreakerState",
    "CircuitBreaker",
    "ServiceError",
    "ServiceClosedError",
    "ServiceOverloadedError",
    "DeadlineExceededError",
    "BatcherCrashedError",
    "ModelUnavailableError",
    "ModelLoadError",
    "SnapshotCorruptionError",
    "ModelPromotionError",
]
