"""Concurrency-safe estimation serving (the deployment layer of Section 5).

The paper argues that a learned estimator is only useful inside a query
optimizer if it is cheap *per call* and knows when not to trust itself.  This
package turns the fused inference engine of ``repro.core`` into a service:

``repro.serving.service``
    :class:`EstimationService` — a thread-safe front-end that canonicalizes
    queries into an LRU result cache, coalesces concurrent callers into
    micro-batches feeding one fused pass, and routes low-confidence queries
    (high ensemble spread, out-of-range join counts) to a traditional
    fallback estimator.
``repro.serving.cache``
    :class:`ResultCache` — the signature-keyed LRU with hit/miss/eviction
    accounting.
``repro.serving.registry``
    :class:`ModelRegistry` — named, versioned model persistence with
    atomically updated "current" pointers, feeding the service's hot-swap.
``repro.serving.stats``
    :class:`ServiceStats` — an extended :class:`~repro.core.estimator.
    PredictionTiming` snapshot (cache hit rate, batch-size histogram,
    per-stage latency, fallback rate).
"""

from repro.serving.cache import ResultCache
from repro.serving.registry import ModelRegistry
from repro.serving.service import EstimationService, ServiceConfig
from repro.serving.stats import ServiceStats

__all__ = [
    "EstimationService",
    "ServiceConfig",
    "ModelRegistry",
    "ResultCache",
    "ServiceStats",
]
