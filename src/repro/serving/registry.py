"""Named, versioned persistence of trained estimators.

:class:`ModelRegistry` wraps :meth:`MSCNEstimator.save`/:meth:`load` with the
layout a serving deployment needs: every publish writes a new immutable
version directory, and a tiny ``CURRENT`` pointer file — updated with an
atomic ``os.replace`` — names the version serving traffic should use.
Readers therefore never observe a half-written model: either the old pointer
(old weights) or the new pointer (fully written new weights).

Layout on disk::

    <root>/<name>/versions/<n>/   # one MSCNEstimator.save() tree per publish
    <root>/<name>/CURRENT         # text file holding the current version id
"""

from __future__ import annotations

import os
import re
import shutil
from pathlib import Path

from repro.core.estimator import MSCNEstimator
from repro.db.table import Database

__all__ = ["ModelRegistry"]

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class ModelRegistry:
    """A directory of named, versioned MSCN models for one database snapshot."""

    def __init__(self, root: str | os.PathLike, database: Database):
        self.root = Path(root)
        self.database = database
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    @staticmethod
    def _check_name(name: str) -> str:
        if not _NAME_PATTERN.match(name):
            raise ValueError(
                f"invalid model name {name!r}; use letters, digits, '.', '_' or '-'"
            )
        return name

    def _model_dir(self, name: str) -> Path:
        return self.root / self._check_name(name)

    def _version_dir(self, name: str, version: int) -> Path:
        return self._model_dir(name) / "versions" / str(version)

    # ------------------------------------------------------------------
    def publish(self, name: str, estimator: MSCNEstimator) -> int:
        """Persist ``estimator`` as the next version of ``name`` and point
        ``CURRENT`` at it.  Returns the new version id."""
        versions_root = self._model_dir(name) / "versions"
        versions_root.mkdir(parents=True, exist_ok=True)
        version = max(self.versions(name), default=0) + 1
        final = versions_root / str(version)
        staging = versions_root / f".staging-{version}-{os.getpid()}"
        if staging.exists():
            shutil.rmtree(staging)
        try:
            estimator.save(staging)
            os.replace(staging, final)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        self._write_current(name, version)
        return version

    def _write_current(self, name: str, version: int) -> None:
        pointer = self._model_dir(name) / "CURRENT"
        staging = pointer.with_name(f".CURRENT.tmp-{os.getpid()}")
        staging.write_text(f"{version}\n", encoding="utf-8")
        os.replace(staging, pointer)

    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        """All model names with at least one published version."""
        found = []
        for entry in sorted(self.root.iterdir()):
            if entry.is_dir() and (entry / "CURRENT").exists():
                found.append(entry.name)
        return found

    def versions(self, name: str) -> list[int]:
        """Published version ids of ``name``, ascending."""
        versions_root = self._model_dir(name) / "versions"
        if not versions_root.is_dir():
            return []
        found = []
        for entry in versions_root.iterdir():
            if entry.is_dir() and entry.name.isdigit():
                found.append(int(entry.name))
        return sorted(found)

    def current_version(self, name: str) -> int:
        """The version id ``CURRENT`` points at."""
        pointer = self._model_dir(name) / "CURRENT"
        if not pointer.exists():
            raise KeyError(f"registry has no model named {name!r}")
        return int(pointer.read_text(encoding="utf-8").strip())

    def set_current(self, name: str, version: int) -> None:
        """Atomically repoint ``CURRENT`` (e.g. rolling back a bad publish)."""
        if version not in self.versions(name):
            raise KeyError(f"model {name!r} has no version {version}")
        self._write_current(name, version)

    def load(self, name: str, version: int | None = None) -> MSCNEstimator:
        """Load ``name`` at ``version`` (default: the ``CURRENT`` pointer)."""
        if version is None:
            version = self.current_version(name)
        directory = self._version_dir(name, version)
        if not directory.is_dir():
            raise KeyError(f"model {name!r} has no version {version}")
        return MSCNEstimator.load(directory, self.database)
