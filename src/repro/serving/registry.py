"""Named, versioned, checksum-verified persistence of trained estimators.

:class:`ModelRegistry` wraps :meth:`MSCNEstimator.save`/:meth:`load` with the
layout a serving deployment needs: every publish writes a new immutable
version directory, and a tiny ``CURRENT`` pointer file — updated with an
atomic ``os.replace`` — names the version serving traffic should use.
Readers therefore never observe a half-written model: either the old pointer
(old weights) or the new pointer (fully written new weights).

On top of the atomic layout the registry is crash-safe end to end:

* every publish records a ``MANIFEST.json`` of sha256 checksums inside the
  version directory, and every load verifies it — silently corrupted bytes
  (bad disk, truncated copy, an injected ``corrupt`` fault) surface as a
  typed :class:`~repro.serving.errors.SnapshotCorruptionError` instead of a
  model that loads and estimates garbage,
* transient load failures retry with jittered exponential backoff
  (:class:`RetryPolicy`; corruption is *not* retried — version directories
  are immutable, so a checksum mismatch cannot heal),
* :meth:`promote` publishes, re-loads (checksum-verified) and validates a
  new version before leaving ``CURRENT`` pointed at it, automatically
  rolling the pointer back to the previous version when the new model fails
  to load or validate.

Layout on disk::

    <root>/<name>/versions/<n>/               # one MSCNEstimator.save() tree
    <root>/<name>/versions/<n>/MANIFEST.json  # sha256 per snapshot file
    <root>/<name>/CURRENT                     # current version id (text)
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import re
import shutil
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.core.estimator import MSCNEstimator
from repro.db.table import Database
from repro.serving.errors import (
    ModelLoadError,
    ModelPromotionError,
    SnapshotCorruptionError,
)
from repro.utils.faults import fault_point

__all__ = ["ModelRegistry", "RetryPolicy"]

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_MANIFEST_NAME = "MANIFEST.json"


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff for transient model-load failures.

    Attempt ``k`` (0-based) sleeps ``base_delay_seconds * multiplier**k``
    capped at ``max_delay_seconds``, stretched by a uniform jitter factor in
    ``[1, 1 + jitter]`` drawn from a seeded stream — deterministic schedules
    keep the chaos tests and the fault-injection benchmark replayable.
    """

    max_attempts: int = 3
    base_delay_seconds: float = 0.05
    multiplier: float = 2.0
    max_delay_seconds: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_seconds < 0:
            raise ValueError("base_delay_seconds must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_delay_seconds < 0:
            raise ValueError("max_delay_seconds must be non-negative")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")

    def delays(self) -> list[float]:
        """The full backoff schedule (one delay per retry, deterministic)."""
        stream = random.Random(self.seed)
        delays = []
        for attempt in range(self.max_attempts - 1):
            delay = min(
                self.base_delay_seconds * self.multiplier**attempt,
                self.max_delay_seconds,
            )
            delays.append(delay * (1.0 + stream.random() * self.jitter))
        return delays


class ModelRegistry:
    """A directory of named, versioned MSCN models for one database snapshot.

    ``sleeper`` is injectable so retry backoff is testable without real
    waiting.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        database: Database,
        sleeper: Callable[[float], None] = time.sleep,
    ):
        self.root = Path(root)
        self.database = database
        self._sleeper = sleeper
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    @staticmethod
    def _check_name(name: str) -> str:
        if not _NAME_PATTERN.match(name):
            raise ValueError(
                f"invalid model name {name!r}; use letters, digits, '.', '_' or '-'"
            )
        return name

    def _model_dir(self, name: str) -> Path:
        return self.root / self._check_name(name)

    def _version_dir(self, name: str, version: int) -> Path:
        return self._model_dir(name) / "versions" / str(version)

    # ------------------------------------------------------------------
    def publish(self, name: str, estimator: MSCNEstimator) -> int:
        """Persist ``estimator`` as the next version of ``name`` and point
        ``CURRENT`` at it.  Returns the new version id.

        The snapshot (including its checksum manifest) is staged and moved
        into place with one ``os.replace``, so a version directory either
        exists complete-with-manifest or not at all.
        """
        versions_root = self._model_dir(name) / "versions"
        versions_root.mkdir(parents=True, exist_ok=True)
        version = max(self.versions(name), default=0) + 1
        final = versions_root / str(version)
        staging = versions_root / f".staging-{version}-{os.getpid()}"
        if staging.exists():
            shutil.rmtree(staging)
        try:
            estimator.save(staging)
            self._write_manifest(staging)
            os.replace(staging, final)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        self._write_current(name, version)
        return version

    def promote(
        self,
        name: str,
        estimator: MSCNEstimator,
        validator: Callable[[MSCNEstimator], bool] | None = None,
        retry: RetryPolicy | None = None,
    ) -> int:
        """Publish a new version, but only keep ``CURRENT`` on it if it
        survives a checksum-verified re-load and (optionally) validation.

        ``validator`` receives the *re-loaded* estimator — the bytes serving
        would actually use — and vetoes the promotion by returning ``False``
        or raising.  On any failure ``CURRENT`` is rolled back to the version
        it pointed at before the publish (or removed if this was the first)
        and a :class:`ModelPromotionError` is raised with the cause chained.
        """
        pointer = self._model_dir(name) / "CURRENT"
        previous = self.current_version(name) if pointer.exists() else None
        version = self.publish(name, estimator)
        try:
            loaded = self.load(name, version, retry=retry)
            if validator is not None and validator(loaded) is False:
                raise ModelPromotionError(
                    f"validator rejected {name!r} version {version}"
                )
        except BaseException as error:
            if previous is not None:
                self._write_current(name, previous)
            else:
                pointer.unlink(missing_ok=True)
            raise ModelPromotionError(
                f"promotion of {name!r} version {version} failed "
                f"(rolled back to {previous}): {error}"
            ) from error
        return version

    def _write_current(self, name: str, version: int) -> None:
        pointer = self._model_dir(name) / "CURRENT"
        staging = pointer.with_name(f".CURRENT.tmp-{os.getpid()}")
        staging.write_text(f"{version}\n", encoding="utf-8")
        os.replace(staging, pointer)

    # ------------------------------------------------------------------
    # Checksum manifest
    # ------------------------------------------------------------------
    @staticmethod
    def _file_digest(path: Path) -> str:
        digest = hashlib.sha256()
        with open(path, "rb") as handle:
            for block in iter(lambda: handle.read(1 << 20), b""):
                digest.update(block)
        return digest.hexdigest()

    def _write_manifest(self, directory: Path) -> None:
        files = {
            str(entry.relative_to(directory)): self._file_digest(entry)
            for entry in sorted(directory.rglob("*"))
            if entry.is_file() and entry.name != _MANIFEST_NAME
        }
        manifest = {"algorithm": "sha256", "files": files}
        (directory / _MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    def verify(self, name: str, version: int) -> None:
        """Check the stored snapshot against its manifest.

        Raises :class:`SnapshotCorruptionError` naming every missing or
        mismatched file.  Versions published before manifests existed are
        accepted as-is (nothing to verify against).
        """
        directory = self._version_dir(name, version)
        if not directory.is_dir():
            raise KeyError(f"model {name!r} has no version {version}")
        manifest_path = directory / _MANIFEST_NAME
        if not manifest_path.exists():
            return
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            recorded = dict(manifest["files"])
        except (ValueError, KeyError, TypeError) as error:
            raise SnapshotCorruptionError(
                f"unreadable manifest for {name!r} version {version}: {error}"
            ) from error
        problems = []
        for relative, expected in sorted(recorded.items()):
            path = directory / relative
            if not path.is_file():
                problems.append(f"missing file {relative}")
            elif self._file_digest(path) != expected:
                problems.append(f"checksum mismatch in {relative}")
        if problems:
            raise SnapshotCorruptionError(
                f"model {name!r} version {version} failed verification: "
                + "; ".join(problems)
            )

    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        """All model names with at least one published version."""
        found = []
        for entry in sorted(self.root.iterdir()):
            if entry.is_dir() and (entry / "CURRENT").exists():
                found.append(entry.name)
        return found

    def versions(self, name: str) -> list[int]:
        """Published version ids of ``name``, ascending."""
        versions_root = self._model_dir(name) / "versions"
        if not versions_root.is_dir():
            return []
        found = []
        for entry in versions_root.iterdir():
            if entry.is_dir() and entry.name.isdigit():
                found.append(int(entry.name))
        return sorted(found)

    def current_version(self, name: str) -> int:
        """The version id ``CURRENT`` points at."""
        pointer = self._model_dir(name) / "CURRENT"
        if not pointer.exists():
            raise KeyError(f"registry has no model named {name!r}")
        return int(pointer.read_text(encoding="utf-8").strip())

    def set_current(self, name: str, version: int) -> None:
        """Atomically repoint ``CURRENT`` (e.g. rolling back a bad publish)."""
        if version not in self.versions(name):
            raise KeyError(f"model {name!r} has no version {version}")
        self._write_current(name, version)

    def previous_version(self, name: str) -> int | None:
        """The newest published version older than ``CURRENT`` (rollback
        target), or ``None`` when ``CURRENT`` is the oldest."""
        current = self.current_version(name)
        older = [version for version in self.versions(name) if version < current]
        return max(older, default=None)

    def load(
        self,
        name: str,
        version: int | None = None,
        retry: RetryPolicy | None = None,
    ) -> MSCNEstimator:
        """Load ``name`` at ``version`` (default: the ``CURRENT`` pointer).

        Each attempt verifies the snapshot's checksum manifest before
        deserializing.  With a ``retry`` policy, transient failures back off
        and try again; corruption raises immediately (immutable versions
        cannot heal) and exhausted retries raise :class:`ModelLoadError`
        with the last cause chained.
        """
        if version is None:
            version = self.current_version(name)
        directory = self._version_dir(name, version)
        if not directory.is_dir():
            raise KeyError(f"model {name!r} has no version {version}")
        delays = retry.delays() if retry is not None else []
        last_error: Exception | None = None
        for attempt in range(len(delays) + 1):
            try:
                fault_point("registry.load", path=directory, name=name, version=version)
                self.verify(name, version)
                return MSCNEstimator.load(directory, self.database)
            except SnapshotCorruptionError:
                raise
            except Exception as error:  # noqa: BLE001 — classified below
                last_error = error
                if attempt < len(delays):
                    self._sleeper(delays[attempt])
        raise ModelLoadError(
            f"loading model {name!r} version {version} failed after "
            f"{len(delays) + 1} attempt(s): {last_error}"
        ) from last_error
