"""A circuit breaker over the model inference path.

The classic three-state machine, tuned for the estimation service's single
batcher thread:

* **closed** — traffic flows to the model; consecutive failures are counted
  and ``failure_threshold`` of them in a row open the breaker,
* **open** — the model is not called at all; batches degrade straight to the
  fallback estimator (or fail typed) until ``reset_timeout_seconds`` have
  elapsed since opening,
* **half-open** — after the reset timeout, up to ``half_open_max_probes``
  batches are allowed through as probes; one success closes the breaker (and
  zeroes the failure count), one failure re-opens it and restarts the timer.

The clock is injectable so state transitions are unit-testable without real
waiting, and every method is thread-safe (stats snapshots read the breaker
from arbitrary threads while the batcher drives it).
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState:
    """String constants for the three breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open recovery probes."""

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_seconds: float = 30.0,
        half_open_max_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_seconds < 0:
            raise ValueError("reset_timeout_seconds must be non-negative")
        if half_open_max_probes < 1:
            raise ValueError("half_open_max_probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout_seconds = reset_timeout_seconds
        self.half_open_max_probes = half_open_max_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._opens = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, advancing ``open`` to ``half_open`` when due."""
        with self._lock:
            self._advance_locked()
            return self._state

    @property
    def opens(self) -> int:
        """How many times the breaker has transitioned to open."""
        with self._lock:
            return self._opens

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._consecutive_failures

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Whether the caller may attempt model inference right now.

        In half-open state a ``True`` reserves one probe slot; the caller
        *must* follow up with :meth:`record_success` or
        :meth:`record_failure` to release it.
        """
        with self._lock:
            self._advance_locked()
            if self._state == BreakerState.CLOSED:
                return True
            if self._state == BreakerState.OPEN:
                return False
            if self._probes_in_flight >= self.half_open_max_probes:
                return False
            self._probes_in_flight += 1
            return True

    def record_success(self) -> None:
        """An inference attempt succeeded: close the breaker, reset counters."""
        with self._lock:
            self._state = BreakerState.CLOSED
            self._consecutive_failures = 0
            self._probes_in_flight = 0

    def record_failure(self) -> None:
        """An inference attempt failed: count it, possibly (re-)open."""
        with self._lock:
            self._advance_locked()
            self._consecutive_failures += 1
            if self._state == BreakerState.HALF_OPEN:
                self._open_locked()  # a failed probe re-opens immediately
            elif (
                self._state == BreakerState.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._open_locked()

    # ------------------------------------------------------------------
    def _advance_locked(self) -> None:
        if (
            self._state == BreakerState.OPEN
            and self._clock() - self._opened_at >= self.reset_timeout_seconds
        ):
            self._state = BreakerState.HALF_OPEN
            self._probes_in_flight = 0

    def _open_locked(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = self._clock()
        self._probes_in_flight = 0
        self._opens += 1
