"""Random Sampling (RS) baseline.

As described in Section 4 of the paper: RS evaluates base-table predicates on
materialized per-table samples to estimate base-table cardinalities and
assumes independence when estimating joins.  When no sample tuple qualifies
for a conjunctive predicate (the 0-tuple situation), it tries to evaluate the
conjuncts individually and multiplies their selectivities; if even a single
conjunct has no qualifying samples it falls back to ``1 / num_distinct`` of
the column with the most selective conjunct — an "educated guess".
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.db.query import Predicate, Query
from repro.db.sampling import MaterializedSamples
from repro.db.statistics import DatabaseStatistics
from repro.db.table import Database
from repro.estimators.base import CardinalityEstimator, product_form_estimates

__all__ = ["RandomSamplingEstimator"]


class RandomSamplingEstimator(CardinalityEstimator):
    """Per-table sampling with independence across joins."""

    name = "Random Sampling"

    def __init__(
        self,
        database: Database,
        samples: MaterializedSamples,
        statistics: DatabaseStatistics | None = None,
    ):
        self.database = database
        self.samples = samples
        # Distinct counts are needed for the educated-guess fallback and for
        # PK/FK join selectivities; they are catalog-level statistics every
        # system maintains.
        self.statistics = statistics if statistics is not None else DatabaseStatistics(database)

    # ------------------------------------------------------------------
    # Base tables
    # ------------------------------------------------------------------
    def base_table_selectivity(self, table: str, predicates: list[Predicate]) -> float:
        """Estimated selectivity of a conjunction on one base table."""
        if not predicates:
            return 1.0
        sample = self.samples.sample(table)
        if sample.num_sampled == 0:
            return self._fallback_selectivity(table, predicates)
        qualifying = self.samples.qualifying_count(table, predicates)
        if qualifying > 0:
            return qualifying / sample.num_sampled
        return self._fallback_selectivity(table, predicates)

    def _fallback_selectivity(self, table: str, predicates: list[Predicate]) -> float:
        """The paper's fallback for 0-tuple situations.

        Evaluate each conjunct individually on the sample and multiply the
        selectivities; a conjunct with no qualifying samples contributes
        ``1 / num_distinct`` of its column (and that column is by construction
        the most selective conjunct).
        """
        sample = self.samples.sample(table)
        selectivity = 1.0
        for predicate in predicates:
            if sample.num_sampled > 0:
                qualifying = self.samples.qualifying_count(table, [predicate])
            else:
                qualifying = 0
            if qualifying > 0:
                selectivity *= qualifying / sample.num_sampled
            else:
                distinct = max(
                    self.statistics.column(table, predicate.column).num_distinct, 1
                )
                selectivity *= 1.0 / distinct
        return selectivity

    def base_table_estimate(self, query: Query, table: str) -> float:
        return self._base_estimate(table, query.predicates_on(table))

    def _base_estimate(self, table: str, predicates: Sequence[Predicate]) -> float:
        rows = self.database.table(table).num_rows
        return max(rows * self.base_table_selectivity(table, list(predicates)), 1.0)

    # ------------------------------------------------------------------
    # Joins (independence assumption)
    # ------------------------------------------------------------------
    def join_selectivity(self, join) -> float:
        left = self.statistics.column(join.left_table, join.left_column)
        right = self.statistics.column(join.right_table, join.right_column)
        distinct = max(left.num_distinct, right.num_distinct, 1)
        return 1.0 / distinct

    def estimate(self, query: Query) -> float:
        estimate = 1.0
        for table in query.tables:
            estimate *= self.base_table_estimate(query, table)
        for join in query.joins:
            estimate *= self.join_selectivity(join)
        return max(estimate, 1.0)

    def estimate_many(self, queries: Sequence[Query]) -> np.ndarray:
        """Batched estimation with per-batch memoization.

        Each unique ``(table, predicate set)`` probes the materialized sample
        once per batch and each join edge's selectivity is computed once —
        the sample-probe loop is the hot path under sub-plan fan-out.
        Bit-identical to per-query :meth:`estimate` calls.
        """
        return product_form_estimates(queries, self._base_estimate, self.join_selectivity)
