"""A PostgreSQL-style cardinality estimator.

This baseline mirrors what ``ANALYZE``-based systems do:

* per-column statistics (MCV lists, equi-depth histograms, distinct counts),
* the attribute-value-independence assumption across predicates of one table
  (selectivities are multiplied),
* equi-join selectivity ``1 / max(nd(a), nd(b))`` over the joined key columns
  (PostgreSQL's ``eqjoinsel`` without cross-MCV matching),
* a final clamp to at least one tuple.

Because it multiplies independent per-column selectivities, it systematically
mis-estimates queries whose predicates are correlated — exactly the behaviour
Figure 3 and Table 2 of the paper show for PostgreSQL.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.db.query import Predicate, Query
from repro.db.statistics import DatabaseStatistics
from repro.db.table import Database
from repro.estimators.base import CardinalityEstimator, product_form_estimates

__all__ = ["PostgresEstimator"]


class PostgresEstimator(CardinalityEstimator):
    """Histogram + independence assumption estimator (PostgreSQL stand-in).

    By default the statistics are computed from a bounded ANALYZE-style row
    sample rather than the full table, like real PostgreSQL: distinct counts
    are then Duj1 estimates and MCV/histogram entries reflect the sample.
    ``analyze_sample_rows`` is chosen so the statistics-to-data ratio is in
    the same regime as PostgreSQL's default (300 × statistics-target rows
    against multi-million-row IMDb tables); pass ``statistics`` explicitly to
    use exact statistics instead.
    """

    name = "PostgreSQL"

    def __init__(
        self,
        database: Database,
        statistics: DatabaseStatistics | None = None,
        analyze_sample_rows: int = 3000,
    ):
        self.database = database
        self.statistics = (
            statistics
            if statistics is not None
            else DatabaseStatistics(database, sample_rows=analyze_sample_rows)
        )

    # ------------------------------------------------------------------
    def base_table_estimate(self, query: Query, table: str) -> float:
        """Estimated filtered cardinality of one base table."""
        return self._base_estimate(table, query.predicates_on(table))

    def _base_estimate(self, table: str, predicates: Sequence[Predicate]) -> float:
        table_statistics = self.statistics.table(table)
        selectivity = self.statistics.conjunction_selectivity(list(predicates))
        return max(table_statistics.row_count * selectivity, 1.0)

    def join_selectivity(self, join) -> float:
        """Equi-join selectivity ``1 / max(nd(left), nd(right))``."""
        left = self.statistics.column(join.left_table, join.left_column)
        right = self.statistics.column(join.right_table, join.right_column)
        distinct = max(left.num_distinct, right.num_distinct, 1)
        return 1.0 / distinct

    def estimate(self, query: Query) -> float:
        estimate = 1.0
        for table in query.tables:
            estimate *= self.base_table_estimate(query, table)
        for join in query.joins:
            estimate *= self.join_selectivity(join)
        return max(estimate, 1.0)

    def estimate_many(self, queries: Sequence[Query]) -> np.ndarray:
        """Batched estimation with per-batch memoization.

        Sub-plan fan-out (``estimate_subplans``) repeats the same base-table
        predicate sets and join edges across sub-plans; each unique one is
        evaluated against the statistics once per batch.  Results are
        bit-identical to per-query :meth:`estimate` calls.
        """
        return product_form_estimates(queries, self._base_estimate, self.join_selectivity)
