"""Oracle estimator returning exact cardinalities (for tests and debugging)."""

from __future__ import annotations

from repro.db.executor import CardinalityExecutor
from repro.db.query import Query
from repro.db.table import Database
from repro.estimators.base import CardinalityEstimator

__all__ = ["TrueCardinalityEstimator"]


class TrueCardinalityEstimator(CardinalityEstimator):
    """Returns the true cardinality by executing the query.

    Its q-error is exactly 1 on every query, which makes it useful as a
    reference point in tests of the evaluation harness.
    """

    name = "True cardinality"

    def __init__(self, database: Database):
        self._executor = CardinalityExecutor(database)

    def estimate(self, query: Query) -> float:
        return float(max(self._executor.execute(query), 1))
