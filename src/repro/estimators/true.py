"""Oracle estimator returning exact cardinalities (for tests and debugging)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.db.executor import CardinalityExecutor
from repro.db.query import Query
from repro.db.table import Database
from repro.estimators.base import CardinalityEstimator

__all__ = ["TrueCardinalityEstimator"]


class TrueCardinalityEstimator(CardinalityEstimator):
    """Returns the true cardinality by executing the query.

    Its q-error is exactly 1 on every query, which makes it useful as a
    reference point in tests of the evaluation harness — and it is the
    *truth side* of plan-quality evaluation, where every connected sub-plan
    of every query must be executed.  Results are therefore memoized in a
    signature-keyed bounded LRU by default: plan enumeration re-asks for
    shared sub-plans constantly, and repeated scenario runs over one
    database snapshot re-execute nothing.  Pass ``cache_capacity=None`` to
    execute every call.

    A second, coarser reuse layer sits below the result memo: the executor's
    per-(table, predicate-set) scan memo (``scan_cache_capacity``).  Connected
    sub-plans of one query share base-table predicate sets, so even sub-plans
    whose *results* differ reuse each other's qualifying-row scans.
    ``max_workers`` additionally fans each individual scan across threads
    block-by-block (bit-identical counts at any worker count).
    """

    name = "True cardinality"

    def __init__(
        self,
        database: Database,
        cache_capacity: int | None = 65536,
        scan_cache_capacity: int | None = 256,
        max_workers: "int | str | None" = None,
    ):
        self._executor = CardinalityExecutor(
            database,
            cache_capacity=cache_capacity,
            max_workers=max_workers,
            scan_cache_capacity=scan_cache_capacity,
        )

    @property
    def cache_hits(self) -> int:
        """Executions avoided by the signature-keyed memo."""
        return self._executor.cache_hits

    @property
    def cache_misses(self) -> int:
        return self._executor.cache_misses

    @property
    def scan_reuse_hits(self) -> int:
        """Base-table scans served from the per-predicate-set scan memo."""
        return self._executor.scan_reuse_hits

    @property
    def scan_reuse_misses(self) -> int:
        return self._executor.scan_reuse_misses

    def estimate(self, query: Query) -> float:
        return float(max(self._executor.execute(query), 1))

    def estimate_many(self, queries: Sequence[Query]) -> np.ndarray:
        """Executes (or recalls) each query; memoization dedupes within the
        batch as well as across calls."""
        return np.array([self.estimate(query) for query in queries], dtype=np.float64)
