"""Index-Based Join Sampling (IBJS) baseline.

IBJS (Leis et al., CIDR 2017) is the paper's state-of-the-art sampling
competitor: qualifying base-table sample tuples are probed through existing
PK/FK index structures, which captures join-crossing correlations as long as
the starting sample is non-empty.  The algorithm implemented here follows the
description in both papers:

1. pick the starting table as the one with the smallest estimated filtered
   cardinality among tables that still have qualifying sample tuples (prefer
   tables with predicates, since those carry the selective information),
2. walk the query's join tree outward from the starting table; at every step
   probe the current intermediate sample tuples through the hash index on the
   next table's join key, apply that table's predicates to the matches, and
   cap the intermediate size (tracking the scale factor the cap introduces),
3. the final estimate is ``|intermediate| × accumulated scale factors``.

Like the paper's implementation, IBJS falls back to the Random Sampling
estimate when the starting table has no qualifying samples (the 0-tuple
situation) or when the intermediate result dies out during probing.
"""

from __future__ import annotations

import numpy as np

from repro.db.index import IndexSet
from repro.db.predicates import evaluate_conjunction
from repro.db.query import Query
from repro.db.sampling import MaterializedSamples
from repro.db.table import Database
from repro.estimators.base import CardinalityEstimator
from repro.estimators.random_sampling import RandomSamplingEstimator
from repro.utils.rng import spawn_rng

__all__ = ["IndexBasedJoinSamplingEstimator"]


class IndexBasedJoinSamplingEstimator(CardinalityEstimator):
    """Probes qualifying base-table samples through PK/FK hash indexes."""

    name = "Index-Based Join Sampling"

    def __init__(
        self,
        database: Database,
        samples: MaterializedSamples,
        indexes: IndexSet | None = None,
        max_intermediate: int = 1000,
        seed: int = 0,
    ):
        if max_intermediate <= 0:
            raise ValueError("max_intermediate must be positive")
        self.database = database
        self.samples = samples
        self.indexes = indexes if indexes is not None else IndexSet(database)
        self.max_intermediate = max_intermediate
        self._fallback = RandomSamplingEstimator(database, samples)
        self._rng = spawn_rng(seed, "ibjs")

    # ------------------------------------------------------------------
    def estimate(self, query: Query) -> float:
        if query.num_joins == 0:
            # Single-table queries: IBJS degenerates to Random Sampling.
            return self._fallback.estimate(query)
        start_table = self._choose_start_table(query)
        if start_table is None:
            # 0-tuple situation on every candidate starting table.
            return self._fallback.estimate(query)
        estimate = self._probe_join_tree(query, start_table)
        if estimate is None:
            return self._fallback.estimate(query)
        return max(estimate, 1.0)

    # ------------------------------------------------------------------
    def _choose_start_table(self, query: Query) -> str | None:
        """Starting table: smallest sampling-estimated result, non-empty sample."""
        best_table = None
        best_score = None
        for table in query.tables:
            predicates = list(query.predicates_on(table))
            qualifying = self.samples.qualifying_count(table, predicates)
            if qualifying == 0:
                continue
            sample = self.samples.sample(table)
            estimated_rows = qualifying * sample.scale_factor
            # Prefer tables with predicates: they carry the selective signal.
            score = (0 if predicates else 1, estimated_rows)
            if best_score is None or score < best_score:
                best_score = score
                best_table = table
        return best_table

    def _probe_join_tree(self, query: Query, start_table: str) -> float | None:
        """Walk the join tree from ``start_table``; None signals a dead end."""
        sample = self.samples.sample(start_table)
        start_rows = self.samples.qualifying_rows(
            start_table, query.predicates_on(start_table)
        )
        if len(start_rows) == 0:
            return None
        scale = sample.scale_factor

        visited = [start_table]
        # The intermediate sample: per visited table, aligned arrays of row ids.
        intermediate: dict[str, np.ndarray] = {start_table: start_rows.astype(np.int64)}
        remaining_joins = list(query.joins)

        while remaining_joins:
            join = self._next_join(remaining_joins, visited)
            if join is None:
                # Disconnected join graph; never produced by the generators.
                return None
            remaining_joins.remove(join)
            anchor = join.left_table if join.left_table in visited else join.right_table
            new_table = join.other_table(anchor)
            intermediate, factor = self._probe_step(query, intermediate, join, anchor, new_table)
            if intermediate is None:
                return None
            scale *= factor
            visited.append(new_table)
        size = len(next(iter(intermediate.values())))
        return size * scale

    @staticmethod
    def _next_join(remaining_joins, visited):
        for join in remaining_joins:
            if (join.left_table in visited) != (join.right_table in visited):
                return join
        for join in remaining_joins:
            if join.left_table in visited and join.right_table in visited:
                return join
        return None

    def _probe_step(self, query, intermediate, join, anchor, new_table):
        """Probe the intermediate tuples through the index on ``new_table``."""
        anchor_rows = intermediate[anchor]
        anchor_keys = self.database.table(anchor).column_values(
            join.column_of(anchor), anchor_rows
        )
        index = self.indexes.index(new_table, join.column_of(new_table))
        predicates = [
            (p.column, p.operator, p.value) for p in query.predicates_on(new_table)
        ]
        new_table_object = self.database.table(new_table)

        expanded_positions: list[int] = []
        expanded_new_rows: list[int] = []
        for position, key in enumerate(anchor_keys.tolist()):
            matches = index.lookup(key)
            if matches.size == 0:
                continue
            if predicates:
                qualifies = evaluate_conjunction(new_table_object, predicates, rows=matches)
                matches = matches[qualifies]
            for row in matches.tolist():
                expanded_positions.append(position)
                expanded_new_rows.append(row)

        if not expanded_new_rows:
            return None, 1.0

        positions = np.asarray(expanded_positions, dtype=np.int64)
        new_rows = np.asarray(expanded_new_rows, dtype=np.int64)
        factor = 1.0
        if len(new_rows) > self.max_intermediate:
            chosen = self._rng.choice(len(new_rows), size=self.max_intermediate, replace=False)
            factor = len(new_rows) / self.max_intermediate
            positions = positions[chosen]
            new_rows = new_rows[chosen]

        updated = {table: rows[positions] for table, rows in intermediate.items()}
        updated[new_table] = new_rows
        return updated, factor
