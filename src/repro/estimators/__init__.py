"""Baseline cardinality estimators used as competitors in the paper.

* :class:`~repro.estimators.postgres.PostgresEstimator` — textbook
  histogram/MCV statistics with the attribute-value-independence assumption
  and ``1/max(nd)`` join selectivities (stand-in for PostgreSQL 10.3).
* :class:`~repro.estimators.random_sampling.RandomSamplingEstimator` — the
  paper's Random Sampling (RS): per-table materialized samples, independence
  for joins, with the conjunct-wise fallback for empty samples.
* :class:`~repro.estimators.ibjs.IndexBasedJoinSamplingEstimator` — the
  paper's strongest baseline (IBJS): qualifying base-table samples probed
  through PK/FK hash indexes, with the same fallback as RS.
* :class:`~repro.estimators.true.TrueCardinalityEstimator` — an oracle used
  in tests and sanity checks.
"""

from repro.estimators.base import CardinalityEstimator
from repro.estimators.ibjs import IndexBasedJoinSamplingEstimator
from repro.estimators.postgres import PostgresEstimator
from repro.estimators.random_sampling import RandomSamplingEstimator
from repro.estimators.true import TrueCardinalityEstimator

__all__ = [
    "CardinalityEstimator",
    "PostgresEstimator",
    "RandomSamplingEstimator",
    "IndexBasedJoinSamplingEstimator",
    "TrueCardinalityEstimator",
]
