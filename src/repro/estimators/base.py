"""The estimator interface shared by MSCN and all baselines."""

from __future__ import annotations

import abc
from typing import Callable, Sequence

import numpy as np

from repro.db.query import JoinCondition, Predicate, Query

__all__ = ["CardinalityEstimator", "product_form_estimates", "subplan_map"]


def subplan_map(
    subqueries: Sequence[Query], estimates: Sequence[float]
) -> dict[frozenset[str], float]:
    """Assemble the sub-plan table-set → estimate mapping every
    ``estimate_subplans`` implementation returns (one shared shape, so the
    optimizer's consumers cannot drift apart)."""
    return {
        frozenset(subquery.tables): float(estimate)
        for subquery, estimate in zip(subqueries, estimates)
    }


class CardinalityEstimator(abc.ABC):
    """Anything that can estimate COUNT(*) results for queries.

    Implementations must return strictly positive estimates (cardinality
    estimates of zero break the q-error metric and are never useful to an
    optimizer; the paper's competitors clamp to one tuple as well).
    """

    #: Human-readable name used in reports.
    name: str = "estimator"

    @abc.abstractmethod
    def estimate(self, query: Query) -> float:
        """Estimated result cardinality of ``query`` (>= 1)."""

    def estimate_many(self, queries: Sequence[Query]) -> np.ndarray:
        """Vectorized convenience wrapper around :meth:`estimate`.

        Accepts any sequence of queries (lists, tuples, workload slices), not
        just lists — the evaluation harness routes every workload through
        this method, so vectorized subclass overrides are used end-to-end.
        """
        return np.array([self.estimate(query) for query in queries], dtype=np.float64)

    def estimate_subplans(self, query: Query) -> dict[frozenset[str], float]:
        """Estimates for every connected sub-plan of ``query``, batched.

        A join-order optimizer never asks for one cardinality: it costs every
        connected subgraph of the query it is planning.  This method derives
        the sub-queries once (``Query.connected_subqueries``) and answers them
        through a single :meth:`estimate_many` call, so estimators with a
        vectorized batch path (MSCN's fused pass, the dedup-batched baselines)
        serve the whole fan-out in one shot.  Keys are sub-plan table sets;
        the full query's own estimate is included under ``frozenset(tables)``.
        """
        subqueries = query.connected_subqueries()
        return subplan_map(subqueries, self.estimate_many(subqueries))


def product_form_estimates(
    queries: Sequence[Query],
    base_table_estimate: Callable[[str, tuple[Predicate, ...]], float],
    join_selectivity: Callable[[JoinCondition], float],
) -> np.ndarray:
    """Batched evaluation for product-form estimators (PostgreSQL-style, RS).

    Both classical baselines estimate ``∏ base-table estimates × ∏ join
    selectivities``.  Under sub-plan fan-out the same ``(table, predicate
    set)`` pair recurs in up to ``2^(n-1)`` sub-plans of one query and every
    join edge recurs in half of them, so the batch path computes each unique
    base-table estimate and join selectivity **once** and assembles per-query
    products from the memo — identical floating-point multiplication order to
    the per-query ``estimate`` path, so results are bit-identical to it.
    """
    base_cache: dict[tuple, float] = {}
    join_cache: dict[str, float] = {}
    results = np.empty(len(queries), dtype=np.float64)
    for position, query in enumerate(queries):
        estimate = 1.0
        for table in query.tables:
            predicates = query.predicates_on(table)
            # The key keeps the predicates' presented order: selectivities are
            # multiplied in that order, so two permutations of one predicate
            # set may differ in the last ulp — sharing one factor across them
            # would break the bit-identity-with-estimate() guarantee.  Fan-out
            # traffic derives every sub-plan from one parent query, so the
            # order is consistent and dedup is unaffected.
            key = (table, tuple(
                (p.column, p.operator.value, p.value) for p in predicates
            ))
            factor = base_cache.get(key)
            if factor is None:
                factor = base_table_estimate(table, predicates)
                base_cache[key] = factor
            estimate *= factor
        for join in query.joins:
            canonical = join.canonical
            factor = join_cache.get(canonical)
            if factor is None:
                factor = join_selectivity(join)
                join_cache[canonical] = factor
            estimate *= factor
        results[position] = max(estimate, 1.0)
    return results
