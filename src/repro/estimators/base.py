"""The estimator interface shared by MSCN and all baselines."""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.db.query import Query

__all__ = ["CardinalityEstimator"]


class CardinalityEstimator(abc.ABC):
    """Anything that can estimate COUNT(*) results for queries.

    Implementations must return strictly positive estimates (cardinality
    estimates of zero break the q-error metric and are never useful to an
    optimizer; the paper's competitors clamp to one tuple as well).
    """

    #: Human-readable name used in reports.
    name: str = "estimator"

    @abc.abstractmethod
    def estimate(self, query: Query) -> float:
        """Estimated result cardinality of ``query`` (>= 1)."""

    def estimate_many(self, queries: Sequence[Query]) -> np.ndarray:
        """Vectorized convenience wrapper around :meth:`estimate`.

        Accepts any sequence of queries (lists, tuples, workload slices), not
        just lists — the evaluation harness routes every workload through
        this method, so vectorized subclass overrides are used end-to-end.
        """
        return np.array([self.estimate(query) for query in queries], dtype=np.float64)
