"""Machine-readable benchmark records and benchmark-environment control.

The smoke benchmarks and the Section 4.7 latency benchmark each write a
``BENCH_<name>.json`` next to their human-readable ``.txt`` report, so CI
runs (and local reruns) leave a structured trail of throughput and latency
numbers that tooling can diff across commits without scraping text tables.

Every record carries a common envelope — benchmark name, serving dtype /
precision tier, engine replica count, throughput and latency percentiles —
plus free-form benchmark-specific metrics.  Fields that do not apply are
simply ``None``; consumers must treat absent/null keys as "not measured".

:func:`pin_blas_threads` is the shared benchmark-environment helper: every
smoke benchmark measuring thread-level parallelism (engine replica pools,
block-parallel scans, concurrent labeling) must pin the BLAS libraries to
one thread so nested BLAS threading neither inflates serial baselines nor
contends with the worker pools under test.  This module deliberately avoids
importing numpy at module level so the helper can run before numpy — and
therefore before OpenBLAS/MKL read their thread-count environment variables
— is loaded anywhere in the process.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import warnings
from os import PathLike
from pathlib import Path
from typing import Mapping, Sequence

__all__ = ["latency_percentiles_ms", "pin_blas_threads", "write_bench_json"]

#: Thread-count knobs of every BLAS/threading backend numpy may load.
_BLAS_THREAD_VARIABLES = (
    "OPENBLAS_NUM_THREADS",
    "OMP_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)


def pin_blas_threads(threads: int = 1) -> dict[str, str]:
    """Pin BLAS/OpenMP thread pools to ``threads`` via environment variables.

    Must run **before numpy is first imported**: OpenBLAS and MKL size their
    thread pools from these variables at library load time.  Explicitly
    exported values are respected (``setdefault`` semantics), so a caller
    who deliberately benchmarks multi-threaded BLAS can still do so.  Emits
    a ``RuntimeWarning`` when numpy is already loaded, because the pins then
    cannot take effect for this process.

    Returns the mapping of variables to their effective values.
    """
    if threads < 1:
        raise ValueError("threads must be >= 1")
    if "numpy" in sys.modules:
        warnings.warn(
            "pin_blas_threads() called after numpy was imported; BLAS thread "
            "pools are already sized and the pins will not take effect",
            RuntimeWarning,
            stacklevel=2,
        )
    applied = {}
    for variable in _BLAS_THREAD_VARIABLES:
        os.environ.setdefault(variable, str(threads))
        applied[variable] = os.environ[variable]
    return applied


def latency_percentiles_ms(samples_seconds: Sequence[float]) -> tuple[float, float]:
    """``(p50_ms, p95_ms)`` of a list of per-call wall-clock seconds."""
    import numpy as np

    milliseconds = np.asarray(samples_seconds, dtype=np.float64) * 1000.0
    if milliseconds.size == 0:
        return 0.0, 0.0
    p50, p95 = np.percentile(milliseconds, [50.0, 95.0])
    return float(p50), float(p95)


def write_bench_json(
    directory: "str | PathLike",
    name: str,
    *,
    throughput_qps: "float | None" = None,
    p50_ms: "float | None" = None,
    p95_ms: "float | None" = None,
    dtype: "str | None" = None,
    precision: "str | None" = None,
    replicas: "int | None" = None,
    metrics: "Mapping[str, object] | None" = None,
) -> Path:
    """Write ``BENCH_<name>.json`` into ``directory`` and return its path.

    ``metrics`` holds benchmark-specific extras (speedups, q-error deltas,
    counts); they are stored under a ``metrics`` key so the envelope stays
    uniform across benchmarks.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    record = {
        "benchmark": name,
        "throughput_qps": None if throughput_qps is None else float(throughput_qps),
        "p50_ms": None if p50_ms is None else float(p50_ms),
        "p95_ms": None if p95_ms is None else float(p95_ms),
        "dtype": dtype,
        "precision": precision,
        "replicas": None if replicas is None else int(replicas),
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "metrics": dict(metrics) if metrics else {},
    }
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path
