"""Machine-readable benchmark records.

The smoke benchmarks and the Section 4.7 latency benchmark each write a
``BENCH_<name>.json`` next to their human-readable ``.txt`` report, so CI
runs (and local reruns) leave a structured trail of throughput and latency
numbers that tooling can diff across commits without scraping text tables.

Every record carries a common envelope — benchmark name, serving dtype /
precision tier, engine replica count, throughput and latency percentiles —
plus free-form benchmark-specific metrics.  Fields that do not apply are
simply ``None``; consumers must treat absent/null keys as "not measured".
"""

from __future__ import annotations

import json
import os
import platform
from os import PathLike
from pathlib import Path
from typing import Mapping, Sequence

__all__ = ["latency_percentiles_ms", "write_bench_json"]


def latency_percentiles_ms(samples_seconds: Sequence[float]) -> tuple[float, float]:
    """``(p50_ms, p95_ms)`` of a list of per-call wall-clock seconds."""
    import numpy as np

    milliseconds = np.asarray(samples_seconds, dtype=np.float64) * 1000.0
    if milliseconds.size == 0:
        return 0.0, 0.0
    p50, p95 = np.percentile(milliseconds, [50.0, 95.0])
    return float(p50), float(p95)


def write_bench_json(
    directory: "str | PathLike",
    name: str,
    *,
    throughput_qps: "float | None" = None,
    p50_ms: "float | None" = None,
    p95_ms: "float | None" = None,
    dtype: "str | None" = None,
    precision: "str | None" = None,
    replicas: "int | None" = None,
    metrics: "Mapping[str, object] | None" = None,
) -> Path:
    """Write ``BENCH_<name>.json`` into ``directory`` and return its path.

    ``metrics`` holds benchmark-specific extras (speedups, q-error deltas,
    counts); they are stored under a ``metrics`` key so the envelope stays
    uniform across benchmarks.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    record = {
        "benchmark": name,
        "throughput_qps": None if throughput_qps is None else float(throughput_qps),
        "p50_ms": None if p50_ms is None else float(p50_ms),
        "p95_ms": None if p95_ms is None else float(p95_ms),
        "dtype": dtype,
        "precision": precision,
        "replicas": None if replicas is None else int(replicas),
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "metrics": dict(metrics) if metrics else {},
    }
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path
