"""Deterministic random-number-generator management.

Every stochastic component (data generation, sampling, query generation,
weight initialization, mini-batch shuffling) receives its own generator
derived from a user-provided seed plus a component label, so experiments are
reproducible and components do not perturb each other's random streams.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["spawn_rng"]


def spawn_rng(seed: int, label: str = "") -> np.random.Generator:
    """Create a generator deterministically derived from ``(seed, label)``."""
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    child_seed = int.from_bytes(digest[:8], "little")
    return np.random.default_rng(child_seed)
