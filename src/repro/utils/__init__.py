"""Shared utilities: deterministic RNG management and simple timing."""

from repro.utils.rng import spawn_rng
from repro.utils.timer import Timer

__all__ = ["spawn_rng", "Timer"]
