"""Shared utilities: deterministic RNG management, timing, benchmark
records, thread-parallel execution, and seeded fault injection for the
reliability test harness.

Submodules are imported lazily (PEP 562): ``repro.utils.bench`` must be
importable *without* pulling in numpy, because
:func:`~repro.utils.bench.pin_blas_threads` has to run before numpy — and
therefore before the BLAS libraries read their thread-count environment
variables — is loaded anywhere in the process.
"""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - static imports for type checkers only
    from repro.utils.bench import latency_percentiles_ms, pin_blas_threads, write_bench_json
    from repro.utils.faults import FaultPlan, FaultSpec, InjectedFault, fault_point
    from repro.utils.parallel import WorkerPool, chunk_spans, resolve_worker_count
    from repro.utils.rng import spawn_rng
    from repro.utils.timer import Timer

__all__ = [
    "spawn_rng",
    "Timer",
    "latency_percentiles_ms",
    "pin_blas_threads",
    "write_bench_json",
    "WorkerPool",
    "chunk_spans",
    "resolve_worker_count",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "fault_point",
]

_EXPORTS = {
    "spawn_rng": "repro.utils.rng",
    "Timer": "repro.utils.timer",
    "latency_percentiles_ms": "repro.utils.bench",
    "pin_blas_threads": "repro.utils.bench",
    "write_bench_json": "repro.utils.bench",
    "WorkerPool": "repro.utils.parallel",
    "chunk_spans": "repro.utils.parallel",
    "resolve_worker_count": "repro.utils.parallel",
    "FaultPlan": "repro.utils.faults",
    "FaultSpec": "repro.utils.faults",
    "InjectedFault": "repro.utils.faults",
    "fault_point": "repro.utils.faults",
}


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache so subsequent lookups skip __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
