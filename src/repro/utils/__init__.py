"""Shared utilities: deterministic RNG management, timing, benchmark records."""

from repro.utils.bench import latency_percentiles_ms, write_bench_json
from repro.utils.rng import spawn_rng
from repro.utils.timer import Timer

__all__ = ["spawn_rng", "Timer", "latency_percentiles_ms", "write_bench_json"]
