"""Shared utilities: deterministic RNG management, timing, benchmark
records, and seeded fault injection for the reliability test harness."""

from repro.utils.bench import latency_percentiles_ms, write_bench_json
from repro.utils.faults import FaultPlan, FaultSpec, InjectedFault, fault_point
from repro.utils.rng import spawn_rng
from repro.utils.timer import Timer

__all__ = [
    "spawn_rng",
    "Timer",
    "latency_percentiles_ms",
    "write_bench_json",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "fault_point",
]
