"""Shared thread- and process-parallel execution substrate.

Every thread-parallel hot path of the repository — block-chunked predicate
scans, Yannakakis weight propagation, statistics building, workload truth
labeling — shares one requirement: fan contiguous chunks of work across a
bounded number of worker threads **without changing the result**.  NumPy
releases the GIL inside the element-wise comparisons, sorts and reductions
that dominate those paths, so plain threads genuinely run in parallel on
multi-core hosts; what the call sites need from this module is determinism,
not scheduling cleverness.

:class:`WorkerPool` provides exactly that:

* **Deterministic chunk assignment.**  ``run_spans`` splits ``total`` work
  items into at most ``max_workers`` contiguous ``[start, stop)`` spans via
  :func:`chunk_spans` — a pure function of ``(total, workers)`` — and returns
  the per-span results **in span order**, regardless of which thread finished
  first.  Callers that merge partials in span order (or whose merge operation
  is order-independent, like integer count sums) therefore produce results
  bit-identical to a serial run at any worker count.
* **Serial fallback below a work threshold.**  Dispatching a handful of
  items to a thread pool costs more than doing the work inline; spans whose
  item count falls below ``min_parallel_items`` (or a pool configured with
  one worker) run serially on the calling thread, in the same span order.
* **Injectable worker budget.**  ``max_workers=None`` means *serial* — the
  drop-in default that changes nothing for existing call sites —
  ``"auto"`` resolves to the host's CPU count, and any positive integer is
  taken literally.  The underlying ``ThreadPoolExecutor`` is created lazily
  on first parallel dispatch and reused across calls.

Error handling mirrors :meth:`EnginePool.run_many`: every span is awaited
before any failure propagates, so no worker is still writing into shared
output when the call returns, and secondary failures are attached to the
first one's message instead of being silently dropped.

:class:`ProcessPool` is the **process-level** sibling for hot paths the GIL
does throttle — pure-Python featurization loops above all.  It keeps the
exact same contract (``resolve_worker_count`` budgets, :func:`chunk_spans`
assignment, span-ordered results, serial fallback below the work threshold,
await-all error aggregation) but dispatches to spawned worker processes:

* **Spawn, not fork.**  Spawned children start from a clean interpreter, so
  they do **not** inherit the parent's BLAS thread pools (or its pinning —
  the environment mutations :func:`repro.utils.bench.pin_blas_threads` makes
  after child-relevant libraries load would be re-read from scratch anyway).
  Each worker therefore re-pins BLAS to ``blas_threads`` (one by default)
  *before* anything numpy-related is unpickled or imported, so N featurizing
  processes never fan out into N×M BLAS threads.
* **One-time worker state.**  ``initializer(*initargs)`` runs once per
  worker after the pins are in place.  The initializer and its arguments are
  shipped as a single pickled blob and only unpickled *inside* the child
  after pinning — unpickling is what pulls in numpy-heavy modules, and the
  pins must land first.  Callables crossing the process boundary (the
  initializer, tasks, mapped functions) must be module-level (picklable).
* **Serial fallback stays in-process.**  Below the work threshold (or with a
  one-worker budget) nothing is spawned at all; the initializer runs lazily
  once in the parent so task functions see the same one-time state either
  way.
"""

from __future__ import annotations

import os
import pickle
import sys
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Sequence, TypeVar

__all__ = ["ProcessPool", "WorkerPool", "chunk_spans", "resolve_worker_count"]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


def resolve_worker_count(max_workers: "int | str | None") -> int:
    """Normalize a worker budget: ``None`` → 1, ``"auto"`` → CPU count.

    Positive integers pass through; anything else raises ``ValueError`` so a
    typo'd configuration fails at construction instead of degrading silently.
    """
    if max_workers is None:
        return 1
    if max_workers == "auto":
        return os.cpu_count() or 1
    if isinstance(max_workers, bool) or not isinstance(max_workers, int):
        raise ValueError(
            f"max_workers must be None, 'auto' or a positive integer, got {max_workers!r}"
        )
    if max_workers < 1:
        raise ValueError("max_workers must be >= 1 (or None for serial)")
    return max_workers


def chunk_spans(total: int, num_chunks: int) -> list[tuple[int, int]]:
    """Split ``[0, total)`` into ``num_chunks`` contiguous near-equal spans.

    A pure function of its arguments: the first ``total % num_chunks`` spans
    hold one extra item, empty spans are never emitted, and the spans cover
    the range in order — the fixed chunk→worker assignment that makes
    parallel merges reproducible.
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    if num_chunks < 1:
        raise ValueError("num_chunks must be >= 1")
    num_chunks = min(num_chunks, total) if total else 0
    spans: list[tuple[int, int]] = []
    start = 0
    for chunk in range(num_chunks):
        size = total // num_chunks + (1 if chunk < total % num_chunks else 0)
        spans.append((start, start + size))
        start += size
    return spans


class WorkerPool:
    """A bounded thread pool with deterministic contiguous chunk assignment.

    Parameters
    ----------
    max_workers:
        Worker budget: ``None`` (serial, the default), ``"auto"`` (CPU
        count) or a positive integer.
    min_parallel_items:
        Work threshold below which dispatch is skipped and spans run inline
        on the calling thread (thread hand-off costs ~10–100 µs; a scan of
        three blocks is cheaper done in place).
    name:
        Thread-name prefix, for debuggability of stack dumps.
    """

    def __init__(
        self,
        max_workers: "int | str | None" = None,
        min_parallel_items: int = 2,
        name: str = "repro-worker",
    ):
        if min_parallel_items < 1:
            raise ValueError("min_parallel_items must be >= 1")
        self.max_workers = resolve_worker_count(max_workers)
        self.min_parallel_items = int(min_parallel_items)
        self._name = name
        self._executor: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def effective_workers(self, total: int) -> int:
        """Workers a task of ``total`` items will actually use (>= 1)."""
        if total < max(self.min_parallel_items, 2):
            return 1
        return max(1, min(self.max_workers, total))

    def run_spans(
        self, total: int, task: Callable[[int, int], _ResultT]
    ) -> list[_ResultT]:
        """Run ``task(start, stop)`` over contiguous spans of ``[0, total)``.

        The spans are ``chunk_spans(total, effective_workers(total))``; the
        returned list holds one result per span **in span order**.  With one
        effective worker the spans run inline (serial fallback); the single
        span then covers the whole range, so serial and parallel callers
        share one code path.
        """
        workers = self.effective_workers(total)
        spans = chunk_spans(total, workers)
        if workers == 1:
            return [task(start, stop) for start, stop in spans]
        futures = [self._submit(task, start, stop) for start, stop in spans]
        results: list[_ResultT] = [None] * len(futures)  # type: ignore[list-item]
        errors: list[tuple[int, BaseException]] = []
        # Await every span before raising: bailing early would leave workers
        # still mutating caller-owned buffers after this call returned.
        for position, future in enumerate(futures):
            try:
                results[position] = future.result()
            except BaseException as error:  # noqa: BLE001 — re-raised below
                errors.append((position, error))
        if errors:
            first_span, first_error = errors[0]
            if len(errors) > 1:
                others = ", ".join(f"span {span}: {error!r}" for span, error in errors[1:])
                raise RuntimeError(
                    f"{len(errors)}/{len(futures)} worker spans failed; first "
                    f"failure on span {first_span}: {first_error!r}; also: {others}"
                ) from first_error
            raise first_error
        return results

    def map(
        self, function: Callable[[_ItemT], _ResultT], items: Sequence[_ItemT]
    ) -> list[_ResultT]:
        """``[function(item) for item in items]`` with parallel chunks.

        Items are processed in contiguous chunks, one chunk per worker, and
        results are returned in input order — identical to the serial list
        comprehension whenever ``function`` is a pure per-item computation.
        """
        chunked = self.run_spans(
            len(items),
            lambda start, stop: [function(item) for item in items[start:stop]],
        )
        return [result for chunk in chunked for result in chunk]

    # ------------------------------------------------------------------
    def _submit(self, task, *args):
        if self._executor is None:
            with self._lock:
                if self._executor is None:
                    self._executor = ThreadPoolExecutor(
                        max_workers=self.max_workers, thread_name_prefix=self._name
                    )
        return self._executor.submit(task, *args)

    def close(self) -> None:
        """Shut down worker threads (idempotent; the pool stays usable inline)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _process_worker_bootstrap(blas_threads: int, payload: "bytes | None") -> None:
    """Per-worker one-time setup; runs in the child before any task.

    Order matters: the BLAS pins must be exported before numpy loads in this
    process, and the user initializer (whose unpickling is typically what
    first imports numpy) must therefore come second.  This module itself is
    importable without numpy — keep it that way.
    """
    from repro.utils.bench import _BLAS_THREAD_VARIABLES, pin_blas_threads

    if "numpy" in sys.modules:
        # The spawn machinery re-imported a __main__ that loads numpy (the
        # benchmark scripts); those scripts pin before their numpy import,
        # so just make sure the variables exist instead of warning.
        for variable in _BLAS_THREAD_VARIABLES:
            os.environ.setdefault(variable, str(blas_threads))
    else:
        pin_blas_threads(blas_threads)
    if payload is not None:
        initializer, initargs = pickle.loads(payload)
        initializer(*initargs)


def _run_item_chunk(function: Callable, chunk: "list") -> "list":
    """Apply ``function`` to one contiguous chunk of items (worker side)."""
    return [function(item) for item in chunk]


class ProcessPool:
    """A bounded *process* pool with the :class:`WorkerPool` dispatch contract.

    Parameters
    ----------
    max_workers:
        Worker budget: ``None`` (serial, the default), ``"auto"`` (CPU
        count) or a positive integer — exactly :func:`resolve_worker_count`.
    min_parallel_items:
        Work threshold below which spans run inline in the parent (a process
        hand-off costs milliseconds; small batches are cheaper in place).
    name:
        Diagnostic label for error messages.
    initializer, initargs:
        Optional one-time per-worker setup, run after the worker's BLAS pins
        are in place.  Must be picklable module-level state; it is shipped
        as one pickled blob and unpickled only inside the child.
    blas_threads:
        BLAS thread count pinned in every worker before numpy loads (1 by
        default: the processes themselves are the parallelism).
    """

    def __init__(
        self,
        max_workers: "int | str | None" = None,
        min_parallel_items: int = 2,
        name: str = "repro-process",
        initializer: "Callable[..., None] | None" = None,
        initargs: Sequence[Any] = (),
        blas_threads: int = 1,
    ):
        if min_parallel_items < 1:
            raise ValueError("min_parallel_items must be >= 1")
        if blas_threads < 1:
            raise ValueError("blas_threads must be >= 1")
        self.max_workers = resolve_worker_count(max_workers)
        self.min_parallel_items = int(min_parallel_items)
        self.blas_threads = int(blas_threads)
        self._name = name
        self._initializer = initializer
        self._initargs = tuple(initargs)
        self._executor: ProcessPoolExecutor | None = None
        self._lock = threading.Lock()
        self._parent_initialized = False

    # ------------------------------------------------------------------
    def effective_workers(self, total: int) -> int:
        """Workers a task of ``total`` items will actually use (>= 1)."""
        if total < max(self.min_parallel_items, 2):
            return 1
        return max(1, min(self.max_workers, total))

    def run_spans(
        self, total: int, task: Callable[[int, int], _ResultT]
    ) -> list[_ResultT]:
        """Run ``task(start, stop)`` over contiguous spans of ``[0, total)``.

        Identical contract to :meth:`WorkerPool.run_spans` — span-ordered
        results at any worker count — but ``task`` crosses a process
        boundary and must be a picklable module-level callable whose inputs
        are fully described by the span indices (worker-side state set up by
        the pool's ``initializer``).
        """
        workers = self.effective_workers(total)
        spans = chunk_spans(total, workers)
        if workers == 1:
            self._ensure_parent_initialized()
            return [task(start, stop) for start, stop in spans]
        futures = [self._submit(task, start, stop) for start, stop in spans]
        return self._gather(futures)

    def map(
        self, function: Callable[[_ItemT], _ResultT], items: Sequence[_ItemT]
    ) -> list[_ResultT]:
        """``[function(item) for item in items]`` with process-parallel chunks.

        Items are shipped to workers in contiguous pickled chunks, one per
        worker, and results come back in input order — identical to the
        serial list comprehension for pure per-item functions.
        """
        workers = self.effective_workers(len(items))
        if workers == 1:
            self._ensure_parent_initialized()
            return [function(item) for item in items]
        spans = chunk_spans(len(items), workers)
        futures = [
            self._submit(_run_item_chunk, function, list(items[start:stop]))
            for start, stop in spans
        ]
        chunked = self._gather(futures)
        return [result for chunk in chunked for result in chunk]

    # ------------------------------------------------------------------
    def _gather(self, futures: "list") -> "list":
        results: "list" = [None] * len(futures)
        errors: list[tuple[int, BaseException]] = []
        # Await every span before raising (the WorkerPool contract): span
        # results stay deterministic and secondary diagnostics survive.
        for position, future in enumerate(futures):
            try:
                results[position] = future.result()
            except BaseException as error:  # noqa: BLE001 — re-raised below
                errors.append((position, error))
        if errors:
            first_span, first_error = errors[0]
            if len(errors) > 1:
                others = ", ".join(f"span {span}: {error!r}" for span, error in errors[1:])
                raise RuntimeError(
                    f"{len(errors)}/{len(futures)} worker spans failed; first "
                    f"failure on span {first_span}: {first_error!r}; also: {others}"
                ) from first_error
            raise first_error
        return results

    def _ensure_parent_initialized(self) -> None:
        """Run the one-time initializer in-process for the serial fallback."""
        if self._initializer is None or self._parent_initialized:
            return
        with self._lock:
            if not self._parent_initialized:
                self._initializer(*self._initargs)
                self._parent_initialized = True

    def _submit(self, task, *args):
        if self._executor is None:
            with self._lock:
                if self._executor is None:
                    import multiprocessing

                    payload = None
                    if self._initializer is not None:
                        payload = pickle.dumps(
                            (self._initializer, self._initargs),
                            protocol=pickle.HIGHEST_PROTOCOL,
                        )
                    self._executor = ProcessPoolExecutor(
                        max_workers=self.max_workers,
                        mp_context=multiprocessing.get_context("spawn"),
                        initializer=_process_worker_bootstrap,
                        initargs=(self.blas_threads, payload),
                    )
        return self._executor.submit(task, *args)

    def close(self) -> None:
        """Shut down worker processes (idempotent; the pool stays usable inline)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
