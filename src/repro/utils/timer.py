"""A small wall-clock timer used by the model-cost experiments (Section 4.7)."""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """Context manager measuring elapsed wall-clock seconds."""

    def __init__(self) -> None:
        self.elapsed_seconds = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._start is not None:
            self.elapsed_seconds = time.perf_counter() - self._start
            self._start = None
