"""Deterministic fault injection for the serving reliability layer.

A learned estimator embedded in a query optimizer has to keep answering —
correctly, degraded, or with a typed error — while the machinery around it
misbehaves: inference blows up, a model snapshot on disk is corrupt, the
batcher thread dies, latency spikes push requests past their deadlines.
Testing those paths with ad-hoc monkeypatching is fragile and unrepeatable,
so this module provides a *seeded* fault plan that production code
cooperates with through named **fault sites**:

``engine.run``
    fired by :meth:`repro.core.inference.InferenceEngine.run` before each
    fused forward pass,
``registry.load``
    fired by :meth:`repro.serving.registry.ModelRegistry.load` before a
    version directory is read (its context carries ``path``, so a
    ``corrupt`` fault can flip bytes in the stored snapshot),
``batcher.loop``
    fired by the :class:`~repro.serving.service.EstimationService` batcher
    thread at the top of every loop iteration — *outside* the per-batch
    error handling, which is exactly where an uncaught bug would kill the
    thread.

A :class:`FaultPlan` is a list of :class:`FaultSpec` rules.  Every decision
(fire or not) is drawn from a per-spec ``random.Random`` stream derived from
the plan seed, so a plan replays identically across runs, interleavings and
machines — chaos tests and the fault-injection smoke benchmark assert exact
outcome counts against it.  Production code pays one global read plus a
``None`` check per site when no plan is active.
"""

from __future__ import annotations

import hashlib
import random
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active_plan",
    "fault_point",
]

#: Supported fault kinds: raise an exception, stall the call site, or
#: corrupt the file the site is about to read.
FAULT_KINDS = ("error", "latency", "corrupt")


def _derive_seed(*parts) -> int:
    """A stable integer seed from arbitrary parts.

    ``random.Random`` falls back to ``hash()`` for composite seeds, and
    string hashing is randomized per process — hashing through sha256 keeps
    fault schedules identical across runs and machines.
    """
    digest = hashlib.sha256(repr(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class InjectedFault(RuntimeError):
    """The exception a fault plan raises at an instrumented site."""

    def __init__(self, site: str, ordinal: int):
        super().__init__(f"injected fault at {site!r} (trigger #{ordinal})")
        self.site = site
        self.ordinal = ordinal


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: *what* happens, *where*, and *how often*.

    ``probability`` is evaluated against the spec's own seeded stream each
    time the site fires; ``skip_first`` lets the first N evaluations pass
    untouched (e.g. let the service warm up before the chaos starts), and
    ``max_triggers`` bounds how many times the fault actually fires — a
    bounded plan is what lets tests assert recovery after the faults stop.
    """

    site: str
    kind: str = "error"
    probability: float = 1.0
    max_triggers: int | None = None
    skip_first: int = 0
    latency_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.max_triggers is not None and self.max_triggers < 0:
            raise ValueError("max_triggers must be non-negative")
        if self.skip_first < 0:
            raise ValueError("skip_first must be non-negative")
        if self.latency_seconds < 0:
            raise ValueError("latency_seconds must be non-negative")


class FaultPlan:
    """A seeded, thread-safe schedule of faults over named sites.

    Activate with::

        plan = FaultPlan([FaultSpec("engine.run", probability=0.5)], seed=7)
        with plan.activate():
            ...  # instrumented code paths now consult the plan

    The plan is deterministic: spec ``i`` draws from ``Random((seed, i))``,
    and draws happen in site-arrival order under one lock, so a single-
    threaded driver replays exactly.  ``triggered()`` / ``evaluations()``
    expose per-site counters for assertions, and :meth:`report` a summary.
    """

    def __init__(
        self,
        specs: Sequence[FaultSpec],
        seed: int = 0,
        sleeper: Callable[[float], None] = time.sleep,
    ):
        self.specs = tuple(specs)
        self.seed = seed
        self._sleeper = sleeper
        self._lock = threading.Lock()
        self._streams = [
            random.Random(_derive_seed(seed, index)) for index in range(len(self.specs))
        ]
        self._evaluations = [0] * len(self.specs)
        self._triggers = [0] * len(self.specs)

    # ------------------------------------------------------------------
    def fire(self, site: str, **context) -> None:
        """Consult every spec matching ``site``; may sleep, corrupt or raise.

        The decision (and counter updates) happen under the plan lock; the
        *effects* run outside it, so an injected latency spike never blocks
        other sites' decisions.
        """
        pending: list[tuple[int, FaultSpec]] = []
        with self._lock:
            for index, spec in enumerate(self.specs):
                if spec.site != site:
                    continue
                self._evaluations[index] += 1
                if self._evaluations[index] <= spec.skip_first:
                    continue
                if spec.max_triggers is not None and self._triggers[index] >= spec.max_triggers:
                    continue
                if self._streams[index].random() >= spec.probability:
                    continue
                self._triggers[index] += 1
                pending.append((self._triggers[index], spec))
        for ordinal, spec in pending:
            if spec.kind == "latency":
                self._sleeper(spec.latency_seconds)
            elif spec.kind == "corrupt":
                self._corrupt(site, ordinal, context)
            else:
                raise InjectedFault(site, ordinal)

    def _corrupt(self, site: str, ordinal: int, context: dict) -> None:
        """Flip one deterministic byte in the snapshot the site will read."""
        path = context.get("path")
        if path is None:
            raise InjectedFault(site, ordinal)  # nothing to corrupt: still a fault
        target = _corruption_target(Path(path))
        if target is None:
            raise InjectedFault(site, ordinal)
        data = bytearray(target.read_bytes())
        if not data:
            return
        offset = random.Random(_derive_seed(self.seed, "corrupt", site, ordinal)).randrange(
            len(data)
        )
        data[offset] ^= 0xFF
        target.write_bytes(bytes(data))

    # ------------------------------------------------------------------
    def activate(self) -> "_ActivePlan":
        """Install this plan as the process-wide active plan (one at a time)."""
        return _ActivePlan(self)

    def evaluations(self, site: str | None = None) -> int:
        """How many times matching specs were consulted."""
        with self._lock:
            return sum(
                count
                for count, spec in zip(self._evaluations, self.specs)
                if site is None or spec.site == site
            )

    def triggered(self, site: str | None = None) -> int:
        """How many faults actually fired (optionally for one site)."""
        with self._lock:
            return sum(
                count
                for count, spec in zip(self._triggers, self.specs)
                if site is None or spec.site == site
            )

    def report(self) -> list[dict]:
        """Per-spec summary rows (for benchmark output and debugging)."""
        with self._lock:
            return [
                {
                    "site": spec.site,
                    "kind": spec.kind,
                    "probability": spec.probability,
                    "evaluations": evaluations,
                    "triggered": triggers,
                }
                for spec, evaluations, triggers in zip(
                    self.specs, self._evaluations, self._triggers
                )
            ]


def _corruption_target(path: Path) -> Path | None:
    """The file a ``corrupt`` fault flips a byte in.

    A directory target resolves to its largest file (deterministic: size,
    then name) — for a model snapshot that is the weights archive, which is
    also what checksum verification must catch.
    """
    if path.is_file():
        return path
    if path.is_dir():
        files = sorted(
            (entry for entry in path.rglob("*") if entry.is_file()),
            key=lambda entry: (entry.stat().st_size, entry.name),
        )
        return files[-1] if files else None
    return None


# ----------------------------------------------------------------------
# The process-wide active plan.
# ----------------------------------------------------------------------
_active_lock = threading.Lock()
_active: FaultPlan | None = None


class _ActivePlan:
    """Context manager installing/removing a plan as the active one."""

    def __init__(self, plan: FaultPlan):
        self._plan = plan

    def __enter__(self) -> FaultPlan:
        global _active
        with _active_lock:
            if _active is not None:
                raise RuntimeError("another FaultPlan is already active")
            _active = self._plan
        return self._plan

    def __exit__(self, *exc_info) -> None:
        global _active
        with _active_lock:
            _active = None


def active_plan() -> FaultPlan | None:
    """The currently installed plan, if any."""
    return _active


def fault_point(site: str, **context) -> None:
    """Hook called by instrumented production code at a named site.

    With no active plan this is a global read and a ``None`` check — cheap
    enough for hot paths like the fused inference engine.
    """
    plan = _active
    if plan is not None:
        plan.fire(site, **context)
